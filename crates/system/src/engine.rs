//! The unified experiment engine: content-keyed simulation jobs, a
//! scoped-thread parallel executor, and a sharded memo cache.
//!
//! Every experiment in the workspace ultimately reduces to calls of
//! [`crate::noise::run_noise`], which is a *pure* function of the chip,
//! the per-core loads and the run configuration. This module exploits
//! that purity twice:
//!
//! 1. **Parallelism** — independent jobs run on a work-stealing pool of
//!    scoped threads ([`std::thread::scope`], no extra dependencies).
//!    Because jobs are pure, parallel execution is bitwise identical to
//!    serial execution (an invariant the test suite enforces).
//! 2. **Memoization** — a [`SimJob`] carries a [`JobKey`] derived from
//!    the *content* of its inputs (chip configuration, the electrical
//!    fields of each load, window/seed/trace options). Identical jobs —
//!    within one experiment or across experiments sharing an engine —
//!    solve once and share the cached [`NoiseOutcome`].
//!
//! The worker count defaults to [`std::thread::available_parallelism`]
//! and can be overridden with the `VOLTNOISE_THREADS` environment
//! variable (`VOLTNOISE_THREADS=1` forces serial execution).

use crate::chip::Chip;
use crate::noise::{run_noise, CoreLoad, NoiseOutcome, NoiseRunConfig};
use serde::Serialize;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use voltnoise_pdn::topology::NUM_CORES;
use voltnoise_pdn::PdnError;

/// Number of independently locked cache shards. A small power of two:
/// enough to keep worker threads from serializing on one mutex, small
/// enough that an idle engine stays cheap.
const CACHE_SHARDS: usize = 16;

/// Content key of one core's load: exactly the fields
/// [`crate::noise::run_noise`] consumes, with floats captured bit-exactly.
///
/// Instruction bodies, repetition counts and IPCs are deliberately
/// excluded — the noise engine only sees the compiled electrical
/// envelope (currents, stimulus frequency, duty, synchronization), so
/// two stressmarks with different code but the same envelope are the
/// same job.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LoadKey {
    /// Core idles at its static current.
    Idle,
    /// Core runs a compiled stressmark with this electrical envelope.
    Stress {
        /// `stim_freq_hz` bits.
        stim_freq: u64,
        /// `duty` bits.
        duty: u64,
        /// `i_high_a` bits.
        i_high: u64,
        /// `i_low_a` bits.
        i_low: u64,
        /// `i_idle_a` bits.
        i_idle: u64,
        /// Synchronization condition: `(interval_s bits, offset_ticks,
        /// events)` when TOD-synchronized.
        sync: Option<(u64, u32, u32)>,
    },
}

impl LoadKey {
    /// Derives the key of a load.
    pub fn of(load: &CoreLoad) -> LoadKey {
        match load {
            CoreLoad::Idle => LoadKey::Idle,
            CoreLoad::Stressmark(sm) => LoadKey::Stress {
                stim_freq: sm.spec.stim_freq_hz.to_bits(),
                duty: sm.spec.duty.to_bits(),
                i_high: sm.i_high_a.to_bits(),
                i_low: sm.i_low_a.to_bits(),
                i_idle: sm.i_idle_a.to_bits(),
                sync: sm
                    .spec
                    .sync
                    .as_ref()
                    .map(|s| (s.interval_s.to_bits(), s.offset_ticks, s.events)),
            },
        }
    }
}

/// Content key of a whole simulation job. Two jobs with equal keys
/// produce bitwise-identical [`NoiseOutcome`]s.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JobKey {
    /// Chip fingerprint: the serialized [`crate::chip::ChipConfig`] plus
    /// each core's realized skitter configuration (which
    /// [`Chip::undervolted`] re-anchors independently of the config).
    chip_sig: Arc<str>,
    /// Per-core load keys.
    loads: [LoadKey; NUM_CORES],
    /// `NoiseRunConfig::window_s` bits.
    window: Option<u64>,
    /// `NoiseRunConfig::record_traces`.
    record_traces: bool,
    /// `NoiseRunConfig::seed`.
    seed: u64,
}

/// Computes a chip's content fingerprint. The JSON rendering of the
/// configuration is canonical (struct fields serialize in declaration
/// order, map keys sorted), so equal configurations produce equal
/// signatures.
pub fn chip_signature(chip: &Chip) -> Arc<str> {
    let cfg = serde_json::to_string(chip.config()).expect("chip config serializes");
    let mut sig = String::with_capacity(cfg.len() + 64 * NUM_CORES);
    sig.push_str(&cfg);
    for i in 0..NUM_CORES {
        sig.push('|');
        sig.push_str(
            &serde_json::to_string(chip.skitter(i).config()).expect("skitter config serializes"),
        );
    }
    Arc::from(sig)
}

/// A pure, hashable unit of simulation work: one [`run_noise`] call.
#[derive(Debug, Clone)]
pub struct SimJob {
    chip: Arc<Chip>,
    loads: [CoreLoad; NUM_CORES],
    cfg: NoiseRunConfig,
    key: JobKey,
}

impl SimJob {
    /// Builds a job from an already-shared chip. Use [`SimJob::batch`]
    /// when creating many jobs on the same chip — the signature is
    /// computed once per chip, not once per job.
    pub fn new(chip: Arc<Chip>, loads: [CoreLoad; NUM_CORES], cfg: NoiseRunConfig) -> SimJob {
        let sig = chip_signature(&chip);
        SimJob::with_signature(chip, sig, loads, cfg)
    }

    /// Builds a job reusing a precomputed chip signature.
    pub fn with_signature(
        chip: Arc<Chip>,
        chip_sig: Arc<str>,
        loads: [CoreLoad; NUM_CORES],
        cfg: NoiseRunConfig,
    ) -> SimJob {
        let key = JobKey {
            chip_sig,
            loads: std::array::from_fn(|i| LoadKey::of(&loads[i])),
            window: cfg.window_s.map(f64::to_bits),
            record_traces: cfg.record_traces,
            seed: cfg.seed,
        };
        SimJob {
            chip,
            loads,
            cfg,
            key,
        }
    }

    /// A factory for jobs sharing one chip (and one signature).
    pub fn batch(chip: &Chip) -> JobBatch {
        let chip = Arc::new(chip.clone());
        let sig = chip_signature(&chip);
        JobBatch { chip, sig }
    }

    /// The job's content key.
    pub fn key(&self) -> &JobKey {
        &self.key
    }

    /// The chip the job runs on.
    pub fn chip(&self) -> &Chip {
        &self.chip
    }

    /// The per-core loads.
    pub fn loads(&self) -> &[CoreLoad; NUM_CORES] {
        &self.loads
    }

    /// The run configuration.
    pub fn config(&self) -> &NoiseRunConfig {
        &self.cfg
    }

    /// Solves the job directly, bypassing any cache.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] when the PDN solve fails.
    pub fn solve(&self) -> Result<NoiseOutcome, PdnError> {
        run_noise(&self.chip, &self.loads, &self.cfg)
    }
}

/// Factory producing [`SimJob`]s that share one chip instance and one
/// precomputed signature.
#[derive(Debug, Clone)]
pub struct JobBatch {
    chip: Arc<Chip>,
    sig: Arc<str>,
}

impl JobBatch {
    /// Builds one job of the batch.
    pub fn job(&self, loads: [CoreLoad; NUM_CORES], cfg: NoiseRunConfig) -> SimJob {
        SimJob::with_signature(self.chip.clone(), self.sig.clone(), loads, cfg)
    }
}

/// Run statistics of an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct EngineStats {
    /// Worker threads the engine schedules onto.
    pub workers: usize,
    /// Jobs actually solved (cache misses).
    pub solves: usize,
    /// Jobs answered from the memo cache.
    pub cache_hits: usize,
}

/// The parallel, memoizing job executor.
pub struct Engine {
    workers: usize,
    shards: Vec<Mutex<HashMap<JobKey, Arc<NoiseOutcome>>>>,
    solves: AtomicUsize,
    hits: AtomicUsize,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers)
            .field("solves", &self.solves.load(Ordering::Relaxed))
            .field("cache_hits", &self.hits.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

/// Resolves the worker count: `VOLTNOISE_THREADS` when set and valid,
/// otherwise the machine's available parallelism.
fn default_workers() -> usize {
    if let Ok(s) = std::env::var("VOLTNOISE_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

impl Engine {
    /// An engine with the default worker count (see module docs).
    pub fn new() -> Engine {
        Engine::with_workers(default_workers())
    }

    /// An engine with an explicit worker count (≥ 1; 1 = serial).
    pub fn with_workers(workers: usize) -> Engine {
        Engine {
            workers: workers.max(1),
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            solves: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
        }
    }

    /// A process-wide shared engine: experiments routed through it share
    /// one memo cache, so e.g. the Fig. 11a campaign feeds the Fig. 13a
    /// correlation analysis without re-solving a single job.
    pub fn shared() -> &'static Engine {
        static CELL: OnceLock<Engine> = OnceLock::new();
        CELL.get_or_init(Engine::new)
    }

    /// The engine's worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Jobs solved so far (cache misses).
    pub fn solves(&self) -> usize {
        self.solves.load(Ordering::Relaxed)
    }

    /// Jobs answered from the cache so far.
    pub fn cache_hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// A snapshot of the engine's counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            workers: self.workers,
            solves: self.solves(),
            cache_hits: self.cache_hits(),
        }
    }

    fn shard(&self, key: &JobKey) -> &Mutex<HashMap<JobKey, Arc<NoiseOutcome>>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % CACHE_SHARDS]
    }

    /// Runs one job through the cache (solving on a miss). Useful for
    /// adaptive flows — e.g. the Vmin descent — where the next job
    /// depends on the previous outcome.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] when the PDN solve fails. Errors are not
    /// cached; a failing job re-solves on retry.
    pub fn run_one(&self, job: &SimJob) -> Result<Arc<NoiseOutcome>, PdnError> {
        if let Some(hit) = self
            .shard(job.key())
            .lock()
            .expect("cache lock")
            .get(job.key())
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit.clone());
        }
        let outcome = Arc::new(job.solve()?);
        self.solves.fetch_add(1, Ordering::Relaxed);
        self.shard(job.key())
            .lock()
            .expect("cache lock")
            .entry(job.key().clone())
            .or_insert_with(|| outcome.clone());
        Ok(outcome)
    }

    /// Runs a slice of jobs, deduplicating by content key up front (each
    /// distinct key solves at most once per call) and executing the
    /// distinct jobs on the worker pool. The output preserves input
    /// order: `result[i]` is the outcome of `jobs[i]`.
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-indexed failing job — the same
    /// error a serial run would return — so parallel and serial
    /// execution are indistinguishable to callers.
    pub fn run_jobs(&self, jobs: &[SimJob]) -> Result<Vec<Arc<NoiseOutcome>>, PdnError> {
        let mut index_of: HashMap<&JobKey, usize> = HashMap::new();
        let mut unique: Vec<&SimJob> = Vec::new();
        let mut slots: Vec<usize> = Vec::with_capacity(jobs.len());
        for job in jobs {
            let next = unique.len();
            let idx = *index_of.entry(job.key()).or_insert(next);
            if idx == next {
                unique.push(job);
            }
            slots.push(idx);
        }
        let solved = self.par_map(&unique, |job| self.run_one(job))?;
        Ok(slots.into_iter().map(|i| solved[i].clone()).collect())
    }

    /// Applies a fallible function to each item on the worker pool and
    /// collects the results in input order. The generic escape hatch for
    /// parallel work that is not a plain job list (e.g. one Vmin descent
    /// per grid cell).
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-indexed failing item, matching
    /// serial semantics.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (the panic is propagated).
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Result<Vec<U>, PdnError>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> Result<U, PdnError> + Sync,
    {
        let n = items.len();
        let workers = self.workers.min(n);
        if workers <= 1 {
            return items.iter().map(&f).collect();
        }
        let results: Vec<Mutex<Option<Result<U, PdnError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(&items[i]);
                    *results[i].lock().expect("result slot lock") = Some(r);
                });
            }
        });
        let mut out = Vec::with_capacity(n);
        for slot in results {
            out.push(
                slot.into_inner()
                    .expect("result slot lock")
                    .expect("worker filled slot")?,
            );
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::Testbed;
    use voltnoise_stressmark::SyncSpec;

    fn test_jobs(tb: &Testbed) -> Vec<SimJob> {
        let batch = SimJob::batch(tb.chip());
        [45e3, 2.5e6]
            .iter()
            .map(|&f| {
                let sm = tb.max_stressmark(f, Some(SyncSpec::paper_default()));
                let loads = std::array::from_fn(|_| CoreLoad::Stressmark(sm.clone()));
                batch.job(
                    loads,
                    NoiseRunConfig {
                        window_s: Some(25e-6),
                        record_traces: false,
                        seed: 1,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn parallel_equals_serial_bitwise() {
        let tb = Testbed::fast();
        let jobs = test_jobs(tb);
        let serial = Engine::with_workers(1).run_jobs(&jobs).unwrap();
        let parallel = Engine::with_workers(4).run_jobs(&jobs).unwrap();
        for (s, p) in serial.iter().zip(&parallel) {
            let js = serde_json::to_string(&**s).unwrap();
            let jp = serde_json::to_string(&**p).unwrap();
            assert_eq!(js, jp);
        }
    }

    #[test]
    fn identical_jobs_solve_once() {
        let tb = Testbed::fast();
        let engine = Engine::with_workers(2);
        let jobs = test_jobs(tb);
        // Duplicate every job: within one run_jobs call the duplicates
        // must coalesce.
        let doubled: Vec<SimJob> = jobs.iter().chain(jobs.iter()).cloned().collect();
        let outcomes = engine.run_jobs(&doubled).unwrap();
        assert_eq!(outcomes.len(), doubled.len());
        assert_eq!(engine.solves(), jobs.len());
        // A second identical run is served entirely from the cache.
        let before = engine.solves();
        engine.run_jobs(&doubled).unwrap();
        assert_eq!(engine.solves(), before, "second run must not solve");
        // Duplicates coalesce before the cache, so the second run scores
        // one hit per *distinct* job.
        assert_eq!(engine.cache_hits(), jobs.len());
    }

    #[test]
    fn distinct_configs_get_distinct_keys() {
        let tb = Testbed::fast();
        let batch = SimJob::batch(tb.chip());
        let sm = tb.max_stressmark(2.5e6, None);
        let loads: [CoreLoad; NUM_CORES] =
            std::array::from_fn(|_| CoreLoad::Stressmark(sm.clone()));
        let base = NoiseRunConfig {
            window_s: Some(25e-6),
            record_traces: false,
            seed: 1,
        };
        let a = batch.job(loads.clone(), base.clone());
        let b = batch.job(
            loads.clone(),
            NoiseRunConfig {
                seed: 2,
                ..base.clone()
            },
        );
        let c = batch.job(
            loads.clone(),
            NoiseRunConfig {
                window_s: Some(30e-6),
                ..base.clone()
            },
        );
        let d = batch.job(
            loads,
            NoiseRunConfig {
                record_traces: true,
                ..base
            },
        );
        let keys = [a.key(), b.key(), c.key(), d.key()];
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j], "jobs {i} and {j} must differ");
            }
        }
    }

    #[test]
    fn undervolted_chip_changes_the_signature() {
        let tb = Testbed::fast();
        let nominal = chip_signature(tb.chip());
        let lowered = chip_signature(&tb.chip().undervolted(-0.02).unwrap());
        assert_ne!(nominal, lowered);
        // And an identical rebuild matches.
        assert_eq!(nominal, chip_signature(tb.chip()));
    }

    #[test]
    fn par_map_preserves_order_and_first_error() {
        let engine = Engine::with_workers(4);
        let items: Vec<usize> = (0..40).collect();
        let ok = engine.par_map(&items, |&i| Ok(i * 2)).unwrap();
        assert_eq!(ok, items.iter().map(|i| i * 2).collect::<Vec<_>>());
        let err = engine
            .par_map(&items, |&i| {
                if i >= 7 {
                    Err(PdnError::UnknownNode { node: i })
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
        assert!(matches!(err, PdnError::UnknownNode { node: 7 }), "{err:?}");
    }
}
