//! Regenerates paper Fig. 13b: simulated dI step on core 0, observing the
//! noise propagation to every core (depth and arrival time).

use voltnoise::analysis::run_step_response;
use voltnoise::prelude::*;
use voltnoise_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let tb = if opts.reduced { Testbed::fast() } else { Testbed::shared() };
    let step_amps = tb.max_stressmark(2.5e6, None).delta_i();
    let res = run_step_response(tb.chip(), 0, step_amps).expect("step simulation runs");
    opts.finish(&res.render(), &res);
}
