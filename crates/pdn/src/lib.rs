#![warn(missing_docs)]
// Library code must surface failures as typed errors, never panic via
// `unwrap` or `expect`. Test builds (`cfg(test)`) are exempt; the rare
// constructor-invariant site carries a justified targeted `allow`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # voltnoise-pdn
//!
//! A lumped-RLC **power distribution network (PDN) simulator** built for
//! the `voltnoise` workspace, which reproduces the measurement study
//! *"Voltage Noise in Multi-core Processors"* (Bertran et al., MICRO
//! 2014) in simulation.
//!
//! The crate provides:
//!
//! - a [`netlist::Netlist`] builder for R/L/C networks with DC voltage
//!   sources and time-varying current loads;
//! - a transient solver ([`transient::TransientSolver`]) using modified
//!   nodal analysis with trapezoidal companion models and a two-rate
//!   timestep refined around dI/dt edges;
//! - an AC solver ([`ac::AcAnalysis`]) producing the impedance profiles
//!   that package designers use (paper Fig. 7b);
//! - stressmark current waveforms ([`waveform::StressWaveform`]) with
//!   free-run and TOD-synchronized burst modes;
//! - the calibrated six-core chip topology ([`topology::ChipPdn`])
//!   mirroring the paper's zEC12 floorplan: two on-die voltage domains
//!   bridged by the deep-trench eDRAM L3 decap.
//!
//! # Examples
//!
//! Droop of a single-node PDN under a constant load:
//!
//! ```
//! use voltnoise_pdn::netlist::{Netlist, NodeId};
//! use voltnoise_pdn::transient::{ConstantDrive, Probe, TransientConfig, TransientSolver};
//!
//! # fn main() -> Result<(), voltnoise_pdn::PdnError> {
//! let mut nl = Netlist::new();
//! let vdd = nl.add_node("vdd");
//! nl.add_voltage_source(vdd, NodeId::GROUND, 1.0)?;
//! let die = nl.add_node("die");
//! nl.add_resistor(vdd, die, 1e-3)?;
//! nl.add_current_source(die, NodeId::GROUND)?;
//!
//! let mut solver = TransientSolver::new(&nl)?;
//! let result = solver.run(
//!     &ConstantDrive::new(vec![30.0]),
//!     &[Probe::NodeVoltage(die)],
//!     &TransientConfig::new(1e-6),
//! )?;
//! assert!((result.stats[0].mean - 0.97).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

pub mod ac;
pub mod backend;
pub mod cancel;
pub mod complex;
pub mod design;
pub mod error;
pub mod linalg;
pub mod mna;
pub mod netlist;
pub mod rom;
pub mod sensitivity;
pub mod signal;
pub mod sparse;
pub mod telemetry;
pub mod topology;
pub mod transient;
pub mod waveform;

pub use ac::{AcAnalysis, ImpedancePoint};
pub use backend::{Factorization, RomSpec, SolveSpec};
pub use cancel::{CancelReason, CancelToken};
pub use complex::Complex;
pub use design::{check_mask, size_decap, DecapSizing, ImpedanceMask, MaskViolation};
pub use error::PdnError;
pub use mna::{MnaSystem, SolverBackend, SystemPattern, SPARSE_THRESHOLD};
pub use netlist::{Netlist, NodeId, SourceId};
pub use rom::{solve_step_rom, ReducedPdn, RomOutcome, RomStepProblem};
pub use sensitivity::{
    full_sensitivity, parameter_sensitivity, ParameterSensitivity, PdnParameter,
};
pub use signal::{
    autocorrelation, band_filter, entropy_report, fft_in_place, hann_window, ifft_in_place,
    markov_min_entropy, mcv_min_entropy, quantize, resample_uniform, rfft, trace_signature,
    welch_psd, EntropyReport, TraceSignature, WelchConfig, WelchPsd, WelchStream,
};
pub use telemetry::{set_trace, trace_enabled, PhaseTimes, SolverCounters};
pub use topology::{
    ChipPdn, DrawerParams, DrawerPdn, PdnParams, RackParams, RackPdn, VariationSpec, NUM_CORES,
};
pub use transient::{Drive, Probe, ProbeStats, TransientConfig, TransientResult, TransientSolver};
pub use waveform::{CoreWaveform, MultiCoreDrive, StressWaveform, TracePlayback, WaveMode};
