//! Regenerates the paper's SVII-B study: utilization-based dynamic
//! guard-banding margins and energy savings.

use voltnoise::analysis::{run_guardband_study, GuardbandConfig};
use voltnoise::prelude::*;
use voltnoise_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let tb = if opts.reduced { Testbed::fast() } else { Testbed::shared() };
    let cfg = if opts.reduced { GuardbandConfig::reduced() } else { GuardbandConfig::paper() };
    let res = run_guardband_study(tb, &cfg).expect("study runs");
    opts.finish(&res.render(), &res);
}
