//! The full stressmark generation methodology, step by step (paper
//! Figs. 4-6): EPI profiling, candidate selection, the 531 441-combination
//! search funnel, and the assembled dI/dt stressmark listing.
//!
//! Run with: `cargo run --release --example stressmark_search`

use voltnoise::prelude::*;
use voltnoise::stressmark::SEQ_LEN;

fn main() {
    let isa = Isa::zlike();
    let core = CoreConfig::default();

    println!(
        "== step 1: energy-per-instruction profile ({} instructions) ==",
        isa.len()
    );
    let profile = EpiProfile::generate(&isa, &core);
    println!("rank  instr   description                                    power");
    for (i, e) in profile.top(5).iter().enumerate() {
        println!(
            "{:4}  {:6}  {:45}  {:.2}",
            i + 1,
            e.mnemonic,
            e.description,
            e.rel_power
        );
    }
    println!("...");
    for (i, e) in profile.bottom(5).iter().enumerate() {
        println!(
            "{:4}  {:6}  {:45}  {:.2}",
            profile.len() - 4 + i,
            e.mnemonic,
            e.description,
            e.rel_power
        );
    }

    println!("\n== steps 2-5: maximum power sequence search ==");
    let outcome = find_max_power_sequence(&isa, &core, &profile, &SearchConfig::default());
    println!("candidates ({}):", outcome.candidates.len());
    for c in &outcome.candidates {
        println!(
            "  {:8} {:?}/{:?} branch={}  ({:.2} W, IPC {:.2})",
            c.mnemonic, c.category.unit, c.category.class, c.category.branches, c.power_w, c.ipc
        );
    }
    println!(
        "funnel: {} combinations -> {} after microarch filter -> {} after IPC filter -> 1",
        outcome.total_combinations, outcome.after_microarch, outcome.after_ipc
    );
    println!(
        "winner: {:?}  ({:.2} W, IPC {:.2})",
        outcome.best.mnemonics, outcome.best.power_w, outcome.best.ipc
    );

    let min = min_power_sequence(&isa, &core, &profile);
    println!(
        "minimum power sequence: {:?}  ({:.2} W)",
        min.mnemonics, min.power_w
    );

    println!("\n== step 6: assemble a parameterizable dI/dt stressmark ==");
    let spec = StressmarkSpec {
        name: "max_didt_2p5mhz_synced".into(),
        high_body: outcome.best.body.clone(),
        low_body: min.body.clone(),
        stim_freq_hz: 2.5e6,
        duty: 0.5,
        sync: Some(SyncSpec::paper_default()),
    };
    let sm = compile(&isa, &core, spec).expect("searched sequences compile at 2.5 MHz");
    println!(
        "sequence length {SEQ_LEN}, high phase x{}, low phase x{}, dI {:.1} A",
        sm.high_reps,
        sm.low_reps,
        sm.delta_i()
    );
    println!("\n{}", sm.render_asm(&isa));
}
