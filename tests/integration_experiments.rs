//! Integration over the experiment drivers: every paper claim checked at
//! reduced scale in one place.

use voltnoise::analysis::{
    run_delta_i, run_mapping_comparison, run_misalignment, run_step_response, run_sweep,
    CorrelationAnalysis, DeltaIConfig, MisalignConfig, SweepConfig, Table1,
};
use voltnoise::prelude::*;

#[test]
fn headline_claims_hold_together() {
    let tb = Testbed::fast();
    let sweep_cfg = SweepConfig::reduced();

    // (a) Resonant bands exist and sit where the impedance profile says.
    let prof = run_impedance(tb.chip(), &ImpedanceConfig::reduced()).unwrap();
    let (f_die, _) = prof.die_band().unwrap();
    let unsync = run_sweep(tb, &sweep_cfg, false).unwrap();
    let (f_noise_peak, _) = unsync.peak().expect("non-empty sweep");
    assert!(
        (f_noise_peak / f_die).log2().abs() < 1.5,
        "noise peak {f_noise_peak:.3e} should track impedance peak {f_die:.3e}"
    );

    // (b) Synchronization beats resonance.
    let synced = run_sweep(tb, &sweep_cfg, true).unwrap();
    assert!(synced.at(45e3).unwrap().max_pct() > unsync.peak().expect("non-empty sweep").1);

    // (c) 62.5 ns misalignment collapses most of the sync bonus.
    let mis = run_misalignment(tb, &MisalignConfig::reduced()).unwrap();
    let bonus = mis.points[0].mean_pct() - mis.points.last().unwrap().mean_pct();
    let after_one_tick = mis.points[0].mean_pct() - mis.points[1].mean_pct();
    assert!(
        after_one_tick > 0.3 * bonus,
        "one tick removes a large share"
    );
}

#[test]
fn propagation_claims_hold_together() {
    let tb = Testbed::fast();

    // Clusters from the ΔI campaign match the floorplan rows...
    let data = run_delta_i(tb, &DeltaIConfig::reduced()).unwrap();
    let corr = CorrelationAnalysis::from_dataset(&data);
    assert_eq!(corr.cluster_a, vec![0, 2, 4]);

    // ...and agree with the step-response simulation (Fig. 13b confirms
    // Fig. 13a in the paper).
    let step = run_step_response(tb.chip(), 0, 12.0).unwrap();
    let same = (step.droop_depth[2] + step.droop_depth[4]) / 2.0;
    let cross = (step.droop_depth[1] + step.droop_depth[3] + step.droop_depth[5]) / 3.0;
    assert!(same > cross);

    // ...and with the mapping comparison (Fig. 14).
    let cmp = run_mapping_comparison(tb, 2.5e6).unwrap();
    assert!(cmp.clustered_worst() > cmp.split_worst());
}

#[test]
fn table1_and_funnel_are_consistent_with_search() {
    let tb = Testbed::fast();
    let t = Table1::from_testbed(tb);
    let f = FunnelSummary::from_testbed(tb);
    // Top candidates come from the top of the EPI table.
    assert!(f.candidates.contains(&t.top[0].mnemonic));
    // The funnel winner beats the strongest single-instruction loop.
    let top_single = tb.profile().top(1)[0].power_w;
    assert!(f.max_sequence.1 > top_single);
}

#[test]
fn noise_aware_mapping_reduces_worst_case() {
    let tb = Testbed::fast();
    let cfg = NoiseRunConfig {
        window_s: Some(35e-6),
        ..NoiseRunConfig::default()
    };
    let evals = voltnoise::system::evaluate_all_mappings(
        tb,
        3,
        2.5e6,
        Some(SyncSpec::paper_default()),
        &cfg,
    )
    .unwrap();
    let mapper = NoiseAwareMapper::from_measurements(evals);
    let best = mapper.best_for(3).unwrap();
    let worst = mapper.worst_for(3).unwrap();
    assert!(worst.worst_pct > best.worst_pct);
    // The naive (in-order) mapping is never better than the noise-aware one.
    let naive = voltnoise::system::naive_mapping(3);
    let naive_eval = mapper
        .evaluations()
        .iter()
        .find(|e| e.mapping == naive)
        .expect("naive mapping evaluated");
    assert!(naive_eval.worst_pct >= best.worst_pct);
}

#[test]
fn guardband_margin_tracks_active_core_regions() {
    // Fig. 11a regions -> margins monotone in the active count.
    let tb = Testbed::fast();
    let study = voltnoise::analysis::run_guardband_study(
        tb,
        &voltnoise::analysis::GuardbandConfig::reduced(),
    )
    .unwrap();
    assert!(study.margins_v[6] > study.margins_v[1]);
    let table = GuardbandTable::from_worst_case_noise(study.worst_noise_v, 1.1);
    let mut controller = GuardbandController::new(table, 0.93);
    let v6 = controller.voltage();
    let v1 = controller.step(1);
    assert!(v1 < v6);
}
