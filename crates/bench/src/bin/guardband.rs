//! Regenerates the paper's SVII-B study: utilization-based dynamic
//! guard-banding margins and energy savings.
//!
//! A thin wrapper over the experiment registry: the configuration,
//! engine routing and JSON export all live in `voltnoise_bench`.

fn main() {
    voltnoise_bench::run_registry_bin("guardband");
}
