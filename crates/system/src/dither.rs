//! Probabilistic (dithering) thread alignment — the AUDIT-style
//! alternative the paper contrasts with its deterministic TOD mechanism.
//!
//! Prior work (Kim et al. \[26\] in the paper) aligns the ΔI events of
//! multiple cores *probabilistically*: each core re-enters its loop with
//! a random offset every interval, so within enough intervals some
//! interval eventually has all cores (nearly) aligned. The paper's
//! contribution is a **deterministic** mechanism: TOD sync guarantees
//! cycle-accurate alignment in the *first* interval and, crucially, also
//! permits *controlled misalignment* (Fig. 10), which dithering cannot
//! express.
//!
//! This module quantifies the difference: the expected number of
//! intervals a dithering approach needs before all cores coincide, vs
//! one interval for TOD sync.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Outcome of a dithering-alignment simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DitherOutcome {
    /// Cores participating.
    pub cores: usize,
    /// Dither window in alignment slots (e.g. 62.5 ns ticks).
    pub window_slots: u64,
    /// Intervals simulated.
    pub intervals: u64,
    /// Largest number of cores that coincided in any single interval.
    pub best_aligned_cores: usize,
    /// First interval (1-based) at which *all* cores coincided, if any.
    pub full_alignment_at: Option<u64>,
    /// Fraction of intervals with at least half the cores aligned.
    pub half_aligned_fraction: f64,
}

/// Simulates `intervals` rounds of random per-core offsets in a window of
/// `window_slots` alignment slots and reports coincidence quality.
///
/// # Panics
///
/// Panics if `cores == 0` or `window_slots == 0`.
pub fn simulate_dither(
    cores: usize,
    window_slots: u64,
    intervals: u64,
    seed: u64,
) -> DitherOutcome {
    assert!(cores > 0, "need at least one core");
    assert!(window_slots > 0, "window must have at least one slot");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut best = 0usize;
    let mut full_at = None;
    let mut half_hits = 0u64;
    let half = cores.div_ceil(2);
    let mut counts = vec![0u32; window_slots as usize];
    for k in 0..intervals {
        counts.fill(0);
        for _ in 0..cores {
            let slot = rng.gen_range(0..window_slots) as usize;
            counts[slot] += 1;
        }
        let max_here = counts.iter().copied().max().unwrap_or(0) as usize;
        best = best.max(max_here);
        if max_here >= half {
            half_hits += 1;
        }
        if max_here == cores && full_at.is_none() {
            full_at = Some(k + 1);
        }
    }
    DitherOutcome {
        cores,
        window_slots,
        intervals,
        best_aligned_cores: best,
        full_alignment_at: full_at,
        half_aligned_fraction: half_hits as f64 / intervals.max(1) as f64,
    }
}

/// Probability that all `cores` land in the same slot in one interval.
pub fn full_alignment_probability(cores: usize, window_slots: u64) -> f64 {
    (1.0 / window_slots as f64).powi(cores as i32 - 1)
}

/// Expected intervals until the first fully aligned interval (geometric
/// distribution), or `f64::INFINITY` for a degenerate window.
pub fn expected_intervals_to_alignment(cores: usize, window_slots: u64) -> f64 {
    let p = full_alignment_probability(cores, window_slots);
    if p <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / p
    }
}

/// Side-by-side comparison of the two alignment mechanisms for a
/// characterization campaign of `intervals` sync intervals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlignmentComparison {
    /// Cores aligned by the deterministic TOD mechanism (always all, in
    /// the first interval).
    pub tod_aligned_cores: usize,
    /// Expected intervals for the dithering mechanism to reach full
    /// alignment once.
    pub dither_expected_intervals: f64,
    /// Measured dithering outcome for the same budget.
    pub dither_outcome: DitherOutcome,
}

impl AlignmentComparison {
    /// Runs the comparison.
    ///
    /// # Panics
    ///
    /// Panics on zero cores or an empty window.
    pub fn run(cores: usize, window_slots: u64, intervals: u64, seed: u64) -> Self {
        AlignmentComparison {
            tod_aligned_cores: cores,
            dither_expected_intervals: expected_intervals_to_alignment(cores, window_slots),
            dither_outcome: simulate_dither(cores, window_slots, intervals, seed),
        }
    }

    /// Renders a short report.
    pub fn render(&self) -> String {
        format!(
            "# deterministic TOD sync vs probabilistic (dithering) alignment\n\
             TOD: all {} cores cycle-aligned in interval 1 (and misalignment is controllable)\n\
             dithering over {} slots: expected {:.0} intervals to full alignment;\n\
             measured over {} intervals: best {} of {} cores aligned, full alignment {}\n",
            self.tod_aligned_cores,
            self.dither_outcome.window_slots,
            self.dither_expected_intervals,
            self.dither_outcome.intervals,
            self.dither_outcome.best_aligned_cores,
            self.dither_outcome.cores,
            match self.dither_outcome.full_alignment_at {
                Some(k) => format!("first at interval {k}"),
                None => "never reached".to_string(),
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_slot_window_always_aligns() {
        let out = simulate_dither(6, 1, 10, 1);
        assert_eq!(out.best_aligned_cores, 6);
        assert_eq!(out.full_alignment_at, Some(1));
        assert_eq!(full_alignment_probability(6, 1), 1.0);
    }

    #[test]
    fn wide_window_rarely_aligns_six_cores() {
        // 16 slots, 6 cores: p = 16^-5 ~ 1e-6 per interval.
        let out = simulate_dither(6, 16, 2_000, 7);
        assert!(out.full_alignment_at.is_none(), "{out:?}");
        assert!(out.best_aligned_cores < 6);
        assert!(expected_intervals_to_alignment(6, 16) > 1e6);
    }

    #[test]
    fn narrow_window_aligns_quickly() {
        let out = simulate_dither(3, 2, 500, 3);
        // p = 1/4 per interval: full alignment well within 500 rounds.
        let at = out.full_alignment_at.expect("should align");
        assert!(at < 60, "aligned at {at}");
    }

    #[test]
    fn expected_intervals_match_simulation_order_of_magnitude() {
        let cores = 4;
        let window = 4;
        let expected = expected_intervals_to_alignment(cores, window); // 64
        let mut firsts = Vec::new();
        for seed in 0..40 {
            if let Some(k) = simulate_dither(cores, window, 4_000, seed).full_alignment_at {
                firsts.push(k as f64);
            }
        }
        assert!(firsts.len() >= 35, "most runs should align");
        let mean = firsts.iter().sum::<f64>() / firsts.len() as f64;
        assert!(
            mean > expected / 3.0 && mean < expected * 3.0,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn comparison_favors_deterministic_sync() {
        let cmp = AlignmentComparison::run(6, 8, 1_000, 11);
        assert_eq!(cmp.tod_aligned_cores, 6);
        assert!(cmp.dither_expected_intervals > 1_000.0);
        assert!(cmp.render().contains("TOD"));
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let a = simulate_dither(5, 6, 300, 9);
        let b = simulate_dither(5, 6, 300, 9);
        assert_eq!(a, b);
    }
}
