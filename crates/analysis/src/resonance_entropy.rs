//! The `resonance-entropy` study: how much entropy does the die
//! resonance band actually carry under realistic workloads?
//!
//! openentropy harvests PDN resonance as a physical entropy source;
//! this experiment asks the simulation-side version of that question.
//! Each job drives the chip with a max-dI/dt stressmark (on-resonance
//! and off-resonance stimuli), records the core-0 scope trace, and
//! the assembly stage runs the full [`voltnoise_pdn::signal`]
//! pipeline: uniform resampling, Welch PSD, die-band (1–5 MHz) power
//! fraction, then brick-wall band-filtering, 3-bit quantization, and
//! the SP800-90B-style estimator battery over the band-limited
//! samples. The punchline the table shows: the resonance band is
//! *energetic* but nearly *deterministic* — the Markov estimator
//! collapses the min-entropy of the strongly periodic on-resonance
//! signal far below its memoryless (MCV) estimate.

use crate::experiment::Experiment;
use crate::render::Table;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use voltnoise_pdn::signal::{
    band_filter, entropy_report, quantize, resample_uniform, welch_psd, EntropyReport, WelchConfig,
    DIE_BAND_HZ,
};
use voltnoise_pdn::topology::NUM_CORES;
use voltnoise_pdn::PdnError;
use voltnoise_stressmark::SyncSpec;
use voltnoise_system::engine::{Engine, SimJob};
use voltnoise_system::noise::{CoreLoad, NoiseOutcome, NoiseRunConfig};
use voltnoise_system::testbed::Testbed;

/// Uniform resampling grid of each analyzed trace.
const RESAMPLE_POINTS: usize = 4096;

/// Welch segment length over the resampled trace.
const SEGMENT_LEN: usize = 512;

/// Quantizer width for the entropy battery, bits.
const QUANT_BITS: u32 = 3;

/// Configuration: which stimulus workloads to assess.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResonanceEntropyConfig {
    /// Stressmark stimulus frequencies (the first should sit on the
    /// ~2.5 MHz die resonance, the rest off it).
    pub stim_freqs_hz: Vec<f64>,
    /// Trace window per job, seconds.
    pub window_s: f64,
    /// Seeds (each seed is an independent workload realization).
    pub seeds: Vec<u64>,
    /// Observed core.
    pub core: usize,
}

impl ResonanceEntropyConfig {
    /// Full study: on-resonance, board-band, and mid-band stimuli,
    /// two seeds each.
    pub fn paper() -> Self {
        ResonanceEntropyConfig {
            stim_freqs_hz: vec![2.5e6, 300e3, 10e6],
            window_s: 40e-6,
            seeds: vec![1, 2],
            core: 0,
        }
    }

    /// Reduced study for tests and the smoke path.
    pub fn reduced() -> Self {
        ResonanceEntropyConfig {
            stim_freqs_hz: vec![2.5e6, 300e3],
            window_s: 20e-6,
            seeds: vec![1],
            core: 0,
        }
    }
}

/// One `(stimulus, seed)` assessment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResonancePoint {
    /// Stressmark stimulus frequency, Hz.
    pub stim_freq_hz: f64,
    /// Workload seed.
    pub seed: u64,
    /// Strongest Welch peak at or above 500 kHz, Hz.
    pub peak_freq_hz: f64,
    /// Fraction of total trace power inside the 1–5 MHz die band.
    pub band_fraction: f64,
    /// Estimator battery over the band-filtered, quantized samples.
    pub entropy: EntropyReport,
}

/// The assembled study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResonanceEntropy {
    /// One row per `(stimulus, seed)` job, in job order.
    pub points: Vec<ResonancePoint>,
}

impl ResonanceEntropy {
    /// Renders the study table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "resonance-entropy: min-entropy carried by the die resonance band (1-5 MHz)",
        );
        t.columns([
            "stim_hz",
            "seed",
            "peak_hz",
            "band_pct",
            "mcv_bits",
            "markov_bits",
            "h_min_bits",
            "healthy",
        ]);
        for p in &self.points {
            t.row([
                format!("{:.3e}", p.stim_freq_hz),
                format!("{}", p.seed),
                format!("{:.3e}", p.peak_freq_hz),
                format!("{:.3}", p.band_fraction * 100.0),
                format!("{:.3}", p.entropy.mcv_bits),
                format!("{:.3}", p.entropy.markov_bits),
                format!("{:.3}", p.entropy.min_entropy_bits),
                format!("{}", p.entropy.repetition_ok && p.entropy.adaptive_ok),
            ]);
        }
        t.note(&format!(
            "battery: {QUANT_BITS}-bit quantizer over the band-filtered trace, \
             MCV + Markov estimators, repetition-count and adaptive-proportion \
             health checks (SP800-90B style)"
        ));
        t.finish()
    }
}

/// The registry experiment.
#[derive(Debug, Clone)]
pub struct ResonanceEntropyExperiment {
    /// Study configuration.
    pub cfg: ResonanceEntropyConfig,
}

impl Experiment for ResonanceEntropyExperiment {
    type Artifact = ResonanceEntropy;

    fn id(&self) -> &'static str {
        "resonance-entropy"
    }

    fn title(&self) -> &'static str {
        "Signal study: entropy carried by the die resonance band"
    }

    fn jobs(&self, tb: &Testbed) -> Result<Vec<SimJob>, PdnError> {
        let batch = SimJob::batch(tb.chip());
        let mut jobs = Vec::new();
        for &f in &self.cfg.stim_freqs_hz {
            let sm = tb.max_stressmark(f, Some(SyncSpec::paper_default()));
            for &seed in &self.cfg.seeds {
                let loads: [CoreLoad; NUM_CORES] =
                    std::array::from_fn(|_| CoreLoad::Stressmark(sm.clone()));
                jobs.push(batch.job(
                    loads,
                    NoiseRunConfig {
                        window_s: Some(self.cfg.window_s.max(8.0 / f)),
                        record_traces: true,
                        seed,
                        ..NoiseRunConfig::default()
                    },
                ));
            }
        }
        Ok(jobs)
    }

    fn assemble(
        &self,
        _tb: &Testbed,
        outcomes: &[Arc<NoiseOutcome>],
    ) -> Result<ResonanceEntropy, PdnError> {
        let mut points = Vec::new();
        let mut idx = 0usize;
        for &f in &self.cfg.stim_freqs_hz {
            for &seed in &self.cfg.seeds {
                let out = outcomes.get(idx).ok_or(PdnError::EmptyProfile)?;
                idx += 1;
                let traces = out.traces.as_ref().ok_or_else(|| PdnError::Signal {
                    reason: "resonance-entropy jobs must record traces".into(),
                })?;
                let trace = &traces[self.cfg.core];
                points.push(assess_trace(trace.times(), trace.volts(), f, seed)?);
            }
        }
        Ok(ResonanceEntropy { points })
    }

    fn render(&self, artifact: &ResonanceEntropy) -> String {
        artifact.render()
    }
}

/// Runs the full signal pipeline over one trace.
fn assess_trace(
    times: &[f64],
    volts: &[f64],
    stim_freq_hz: f64,
    seed: u64,
) -> Result<ResonancePoint, PdnError> {
    let (fs, samples) = resample_uniform(times, volts, RESAMPLE_POINTS)?;
    let psd = welch_psd(&samples, WelchConfig::half_overlap(SEGMENT_LEN, fs))?;
    let peak_freq_hz = psd
        .peak_in_band(5e5, fs / 2.0)
        .or_else(|| psd.peak())
        .map(|(f, _)| f)
        .unwrap_or(0.0);
    let total = psd.band_power(0.0, fs / 2.0);
    let band = psd.band_power(DIE_BAND_HZ.0, DIE_BAND_HZ.1);
    let band_fraction = if total > 0.0 { band / total } else { 0.0 };
    let filtered = band_filter(&samples, fs, DIE_BAND_HZ.0, DIE_BAND_HZ.1)?;
    let entropy = entropy_report(&quantize(&filtered, QUANT_BITS)?)?;
    Ok(ResonancePoint {
        stim_freq_hz,
        seed,
        peak_freq_hz,
        band_fraction,
        entropy,
    })
}

/// Runs the study on the shared engine.
///
/// # Errors
///
/// Returns [`PdnError`] if a solve or the signal pipeline fails.
pub fn run_resonance_entropy(
    tb: &Testbed,
    cfg: &ResonanceEntropyConfig,
) -> Result<ResonanceEntropy, PdnError> {
    ResonanceEntropyExperiment { cfg: cfg.clone() }.run(tb, Engine::shared())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_resonance_band_is_energetic_but_predictable() {
        let tb = Testbed::fast();
        let study = run_resonance_entropy(tb, &ResonanceEntropyConfig::reduced()).unwrap();
        assert_eq!(study.points.len(), 2);
        let on = &study.points[0]; // 2.5 MHz stimulus
        let off = &study.points[1]; // 300 kHz stimulus
                                    // The on-resonance workload concentrates power in the die band
                                    // and its Welch peak tracks the stimulus.
        assert!(
            (on.peak_freq_hz - 2.5e6).abs() / 2.5e6 < 0.2,
            "peak at {:.3e}",
            on.peak_freq_hz
        );
        assert!(
            on.band_fraction > off.band_fraction,
            "on {} vs off {}",
            on.band_fraction,
            off.band_fraction
        );
        // The band carries little *unpredictable* content: the Markov
        // estimator sees through the periodicity that the memoryless
        // MCV estimate misses.
        assert!(
            on.entropy.markov_bits < on.entropy.mcv_bits,
            "markov {} vs mcv {}",
            on.entropy.markov_bits,
            on.entropy.mcv_bits
        );
        assert!(on.entropy.min_entropy_bits < 2.0);
    }

    #[test]
    fn render_is_a_table_with_battery_note() {
        let tb = Testbed::fast();
        let study = run_resonance_entropy(tb, &ResonanceEntropyConfig::reduced()).unwrap();
        let text = study.render();
        assert!(text.contains("resonance-entropy"));
        assert!(text.contains("h_min_bits"));
        assert!(text.contains("SP800-90B"));
    }
}
