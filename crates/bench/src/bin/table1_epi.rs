//! Regenerates paper Table I: the first and last five instructions of the
//! 1301-instruction EPI ranking.

use voltnoise::prelude::*;
use voltnoise_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let tb = if opts.reduced { Testbed::fast() } else { Testbed::shared() };
    let table = Table1::from_testbed(tb);
    opts.finish(&table.render(), &table);
}
