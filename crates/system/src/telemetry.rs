//! Engine-level telemetry: log-scale latency histograms and the
//! aggregate every [`crate::engine::Engine`] carries.
//!
//! Two kinds of observation flow through here, with different rules:
//!
//! - **Deterministic work counters**
//!   ([`voltnoise_pdn::telemetry::SolverCounters`]) are always
//!   aggregated — they are exact integer tallies, identical on every
//!   machine, and cost a handful of adds per solved job.
//! - **Wall-clock spans** (per-job wall time, per-phase solver time)
//!   are nondeterministic and only recorded while tracing is enabled
//!   ([`trace_enabled`], `VOLTNOISE_TRACE`). They land in fixed-bucket
//!   log-scale histograms so merging is associative, allocation-free
//!   and cheap to snapshot.
//!
//! Neither kind ever enters a job content key, a cached outcome, or a
//! figure: telemetry observes campaigns, it cannot perturb them. The
//! golden-output tests enforce this by requiring byte-identical
//! `full_report` output with tracing on and off.

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

pub use voltnoise_pdn::telemetry::{set_trace, trace_enabled, PhaseTimes, SolverCounters};

/// Number of histogram buckets. Bucket `i` covers `[2^i, 2^(i+1))`
/// nanoseconds (bucket 0 additionally holds zero), so 32 buckets span
/// sub-nanosecond to ~4.3 s — wider than any sane solve.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-bucket logarithmic (base-2) latency histogram over
/// nanosecond samples.
///
/// The representation is a plain array of counts, which buys three
/// properties the engine relies on: recording is branch-light and
/// allocation-free, merging is element-wise addition (associative,
/// commutative, total-count-preserving — the property tests check
/// this), and snapshots are `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Per-bucket sample counts.
    pub counts: [u64; HISTOGRAM_BUCKETS],
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            counts: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// The bucket index of a nanosecond sample: `floor(log2(ns))`,
    /// clamped into the bucket range (0 holds 0–1 ns, the last bucket
    /// holds everything ≥ ~2.1 s).
    pub fn bucket_of(ns: u64) -> usize {
        if ns <= 1 {
            0
        } else {
            ((63 - ns.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// The lower bound (inclusive, nanoseconds) of bucket `i`.
    pub fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << i
        }
    }

    /// Records one nanosecond sample.
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket_of(ns)] += 1;
    }

    /// Adds another histogram into this one. Element-wise, so merging
    /// is associative and commutative and preserves total counts.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// The lower bound of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`), or `None` for an empty histogram. Bucket
    /// resolution means the answer is exact to within a factor of two —
    /// the right fidelity for "where did the time go" questions.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_floor(i));
            }
        }
        Some(Self::bucket_floor(HISTOGRAM_BUCKETS - 1))
    }

    /// Median bucket floor (see [`LogHistogram::quantile`]).
    pub fn median(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// 95th-percentile bucket floor (see [`LogHistogram::quantile`]).
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }
}

/// Spectral-signature telemetry over every *traced* solve (jobs with
/// `record_traces` set): each captured scope trace is reduced to a
/// [`voltnoise_pdn::signal::TraceSignature`] and quantized into
/// log-scale histograms, so a campaign's spectral fingerprint is a
/// mergeable, `Copy`, integer-only aggregate exactly like the latency
/// histograms. A drifting fingerprint — the die-resonance peak
/// migrating out of its power-of-two frequency bucket, band power or
/// min-entropy collapsing — flags a wrong-physics regression without
/// ever perturbing job content keys or figure bytes.
///
/// Units are repurposed [`LogHistogram`] buckets (`floor(log2(x))`),
/// not nanoseconds: peak frequency in Hz, die-band (1–5 MHz) power in
/// units of 1e-15 V² ("femto-V²"), and assessed min-entropy in
/// milli-bits/sample.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignalTelemetry {
    /// Scope traces analyzed (one per core per traced solve).
    pub traces: u64,
    /// Traces whose signature computation failed (malformed trace).
    pub rejected: u64,
    /// Strongest non-DC Welch peak frequency, Hz.
    pub peak_freq_hz: LogHistogram,
    /// Die-resonance band (1–5 MHz) power, 1e-15 V² units.
    pub band_power_femto: LogHistogram,
    /// Assessed (MCV ∧ Markov) min-entropy, milli-bits/sample.
    pub min_entropy_millibits: LogHistogram,
}

impl SignalTelemetry {
    /// Folds one trace signature into the aggregate. Saturating
    /// integer quantization: non-finite or negative quantities land
    /// in bucket 0.
    pub fn record_signature(&mut self, sig: &voltnoise_pdn::signal::TraceSignature) {
        self.traces += 1;
        self.peak_freq_hz.record(sig.peak_freq_hz as u64);
        self.band_power_femto.record((sig.band_power * 1e15) as u64);
        self.min_entropy_millibits
            .record((sig.min_entropy_bits * 1e3) as u64);
    }

    /// Counts a trace whose signature could not be computed.
    pub fn record_rejected(&mut self) {
        self.rejected += 1;
    }

    /// Merges another aggregate (associative, commutative,
    /// count-preserving — element-wise integer adds throughout).
    pub fn merge(&mut self, other: &SignalTelemetry) {
        self.traces += other.traces;
        self.rejected += other.rejected;
        self.peak_freq_hz.merge(&other.peak_freq_hz);
        self.band_power_femto.merge(&other.band_power_femto);
        self.min_entropy_millibits
            .merge(&other.min_entropy_millibits);
    }
}

/// The engine's telemetry aggregate: solver work counters plus
/// wall-clock histograms.
///
/// `solver` totals are always live (deterministic, near-free). The
/// histograms and `phase_ns` totals only fill while tracing is enabled;
/// untraced campaigns carry them as zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineTelemetry {
    /// Solver work counters summed over every solved job (cache and
    /// store hits perform no solver work and contribute nothing).
    pub solver: SolverCounters,
    /// Cumulative per-phase solver wall time (traced runs only).
    pub phase_ns: PhaseTimes,
    /// Per-job wall time of each solve (traced runs only).
    pub job_wall: LogHistogram,
    /// Per-job RHS-assembly time (traced runs only).
    pub assemble: LogHistogram,
    /// Per-job LU-factorization time (traced runs only).
    pub factor: LogHistogram,
    /// Per-job back-substitution time (traced runs only).
    pub step: LogHistogram,
    /// Per-job validation/state-advance time (traced runs only).
    pub validate: LogHistogram,
    /// Spectral signatures of captured scope traces (traced-job
    /// solves only; cache and store hits contribute nothing).
    pub signal: SignalTelemetry,
}

impl EngineTelemetry {
    /// Merges another aggregate into this one (associative,
    /// commutative, count-preserving).
    pub fn merge(&mut self, other: &EngineTelemetry) {
        self.solver.merge(&other.solver);
        self.phase_ns.merge(&other.phase_ns);
        self.job_wall.merge(&other.job_wall);
        self.assemble.merge(&other.assemble);
        self.factor.merge(&other.factor);
        self.step.merge(&other.step);
        self.validate.merge(&other.validate);
        self.signal.merge(&other.signal);
    }

    /// Records one solved job's telemetry: counters always, wall-clock
    /// spans only when `traced`.
    pub fn record_job(
        &mut self,
        counters: &SolverCounters,
        phase: &PhaseTimes,
        wall_ns: Option<u64>,
    ) {
        self.solver.merge(counters);
        self.phase_ns.merge(phase);
        if let Some(ns) = wall_ns {
            self.job_wall.record(ns);
            self.assemble.record(phase.assemble_ns);
            self.factor.record(phase.factor_ns);
            self.step.record(phase.step_ns);
            self.validate.record(phase.validate_ns);
        }
    }
}

/// Writes `json` to the path named by `VOLTNOISE_STATS_PATH`, when set.
///
/// Diagnostics-only side channel: failures are reported on stderr and
/// swallowed (a campaign never dies because its stats file was
/// unwritable), and nothing at all happens when the variable is unset.
/// Returns the path written, if any.
pub fn export_stats_json(json: &str) -> Option<std::path::PathBuf> {
    let raw = std::env::var_os("VOLTNOISE_STATS_PATH")?;
    let path = std::path::PathBuf::from(raw);
    match write_all(&path, json) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!(
                "voltnoise: could not write VOLTNOISE_STATS_PATH={}: {e}",
                path.display()
            );
            None
        }
    }
}

fn write_all(path: &Path, json: &str) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(json.as_bytes())?;
    f.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bucket_edges_are_powers_of_two() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 0);
        assert_eq!(LogHistogram::bucket_of(2), 1);
        assert_eq!(LogHistogram::bucket_of(3), 1);
        assert_eq!(LogHistogram::bucket_of(4), 2);
        assert_eq!(LogHistogram::bucket_of(1023), 9);
        assert_eq!(LogHistogram::bucket_of(1024), 10);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(LogHistogram::bucket_floor(0), 0);
        assert_eq!(LogHistogram::bucket_floor(10), 1024);
    }

    #[test]
    fn quantiles_walk_the_cumulative_counts() {
        let mut h = LogHistogram::new();
        assert_eq!(h.median(), None);
        for ns in [1u64, 2, 2, 1000, 1_000_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 5);
        // Ranks: bucket0 has 1, bucket1 has 2, bucket9 has 1, bucket19 has 1.
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.median(), Some(2)); // rank 3 lands in bucket 1
        assert_eq!(h.p95(), Some(LogHistogram::bucket_floor(19)));
        assert_eq!(h.quantile(1.0), Some(LogHistogram::bucket_floor(19)));
    }

    /// Property test: over seeded random sample sets, histogram merge is
    /// associative and preserves total counts, and merging is equivalent
    /// to recording the union of the samples.
    #[test]
    fn merge_is_associative_and_count_preserving() {
        let mut rng = SmallRng::seed_from_u64(0xbe11);
        for _ in 0..50 {
            let mut parts: Vec<Vec<u64>> = Vec::new();
            for _ in 0..3 {
                let n = rng.gen_range(0..40usize);
                // Log-uniform samples spanning the full bucket range.
                parts.push(
                    (0..n)
                        .map(|_| {
                            let exp = rng.gen_range(0..40u32);
                            rng.gen::<u64>() >> exp.min(63)
                        })
                        .collect(),
                );
            }
            let hist_of = |samples: &[u64]| {
                let mut h = LogHistogram::new();
                for &s in samples {
                    h.record(s);
                }
                h
            };
            let [ha, hb, hc] = [hist_of(&parts[0]), hist_of(&parts[1]), hist_of(&parts[2])];
            // (a + b) + c
            let mut left = ha;
            left.merge(&hb);
            left.merge(&hc);
            // a + (b + c)
            let mut right_inner = hb;
            right_inner.merge(&hc);
            let mut right = ha;
            right.merge(&right_inner);
            // union recorded directly
            let union: Vec<u64> = parts.concat();
            let direct = hist_of(&union);
            assert_eq!(left, right, "merge must be associative");
            assert_eq!(left, direct, "merge must equal recording the union");
            assert_eq!(left.count(), union.len() as u64);
        }
    }

    #[test]
    fn signal_telemetry_quantizes_and_merges_exactly() {
        use voltnoise_pdn::signal::TraceSignature;
        let sig = TraceSignature {
            peak_freq_hz: 2.5e6,
            peak_psd: 1e-9,
            band_power: 4e-7, // 4e8 femto-V² -> bucket 28
            min_entropy_bits: 1.5,
        };
        let mut a = SignalTelemetry::default();
        a.record_signature(&sig);
        a.record_rejected();
        assert_eq!(a.traces, 1);
        assert_eq!(a.rejected, 1);
        // 2.5e6 Hz lands in bucket floor 2^21 = 2097152.
        assert_eq!(a.peak_freq_hz.median(), Some(1 << 21));
        // 1500 milli-bits lands in bucket floor 2^10 = 1024.
        assert_eq!(a.min_entropy_millibits.median(), Some(1 << 10));
        let mut b = SignalTelemetry::default();
        b.record_signature(&sig);
        b.record_signature(&TraceSignature {
            peak_freq_hz: 0.0,
            peak_psd: 0.0,
            band_power: f64::NAN, // non-finite saturates to bucket 0
            min_entropy_bits: 0.0,
        });
        // merge(a, b) == merge(b, a), element-wise and count-preserving.
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.traces, 3);
        assert_eq!(ab.peak_freq_hz.count(), 3);
    }

    #[test]
    fn record_job_gates_wall_clock_on_trace() {
        let counters = SolverCounters {
            steps: 10,
            solve_calls: 10,
            ..SolverCounters::default()
        };
        let phase = PhaseTimes {
            assemble_ns: 100,
            factor_ns: 200,
            step_ns: 300,
            validate_ns: 400,
        };
        let mut untraced = EngineTelemetry::default();
        untraced.record_job(&counters, &PhaseTimes::default(), None);
        assert_eq!(untraced.solver.steps, 10);
        assert!(untraced.job_wall.is_empty());
        let mut traced = EngineTelemetry::default();
        traced.record_job(&counters, &phase, Some(1234));
        assert_eq!(traced.job_wall.count(), 1);
        assert_eq!(traced.factor.count(), 1);
        assert_eq!(traced.phase_ns.total_ns(), 1000);
    }
}
