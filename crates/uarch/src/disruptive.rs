//! Disruptive events and memory-hierarchy activity (paper §IV-C).
//!
//! While defining the stressmark methodology the authors "also studied
//! the introduction of disruptive (e.g. branch/cache/TLB misses) events
//! and memory hierarchy activity to maximize the ΔI generated" and
//! rejected them for three measured reasons:
//!
//! (a) disruptive events showed small power differences vs the minimum
//!     power sequence;
//! (b) memory activity did not improve the maximum power significantly;
//! (c) disruptive events and memory activity in shared resources limit
//!     the capacity to control the stimulus frequency.
//!
//! This module models those effects so the rejection can be reproduced:
//! kernels may be decorated with miss events that stall the pipeline
//! (hurting IPC and power) and with off-core memory traffic that adds a
//! little uncore energy but couples the loop timing to a shared, variable
//! resource.

use crate::isa::{Isa, Opcode};
use crate::kernel::{Kernel, RunMetrics};
use crate::pipeline::{CoreConfig, PipelineSim};
use serde::{Deserialize, Serialize};

/// A class of disruptive event injected into a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DisruptiveEvent {
    /// Branch misprediction: pipeline flush and refill.
    BranchMiss,
    /// L1 data-cache miss served by the L2.
    L1Miss,
    /// Cache miss served by the shared L3 (off-core).
    L3Miss,
    /// TLB miss with a table walk.
    TlbMiss,
}

impl DisruptiveEvent {
    /// Stall cycles the event inserts at the dispatch stage.
    pub fn stall_cycles(self) -> u32 {
        match self {
            DisruptiveEvent::BranchMiss => 18,
            DisruptiveEvent::L1Miss => 12,
            DisruptiveEvent::L3Miss => 60,
            DisruptiveEvent::TlbMiss => 40,
        }
    }

    /// Extra energy of the event itself, picojoules (flush/refill or
    /// line transfer). Small compared with the energy lost to stalling.
    pub fn energy_pj(self) -> f64 {
        match self {
            DisruptiveEvent::BranchMiss => 650.0,
            DisruptiveEvent::L1Miss => 900.0,
            DisruptiveEvent::L3Miss => 2600.0,
            DisruptiveEvent::TlbMiss => 1400.0,
        }
    }

    /// True when the event occupies a *shared* resource whose service
    /// time varies with other cores' traffic.
    pub fn uses_shared_resource(self) -> bool {
        matches!(self, DisruptiveEvent::L3Miss | DisruptiveEvent::TlbMiss)
    }
}

/// A kernel decorated with periodic disruptive events and, optionally,
/// off-core memory traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisruptedKernel {
    /// The underlying instruction kernel.
    pub kernel: Kernel,
    /// Event injected once per `every_uops` micro-ops (`None` = never).
    pub event: Option<(DisruptiveEvent, u32)>,
    /// Off-core memory accesses per loop iteration (L3/DRAM traffic).
    pub memory_accesses_per_iter: u32,
}

/// Uncore energy of one off-core memory access (L3 array + fabric), pJ.
const MEMORY_ACCESS_ENERGY_PJ: f64 = 1900.0;

/// Cycles one off-core access occupies the (shared) interface per access
/// beyond what the pipeline overlaps.
const MEMORY_ACCESS_SHARED_CYCLES: f64 = 4.0;

/// Result of running a disrupted kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DisruptedMetrics {
    /// Baseline metrics (cycles, power, IPC) including disruption.
    pub metrics: RunMetrics,
    /// Relative loop-period variability (coefficient of variation) caused
    /// by shared-resource contention — the paper's reason (c): it
    /// "limits the capacity to control the stimulus frequency".
    pub period_variability: f64,
}

impl DisruptedKernel {
    /// Builds an undisrupted wrapper.
    pub fn plain(kernel: Kernel) -> Self {
        DisruptedKernel {
            kernel,
            event: None,
            memory_accesses_per_iter: 0,
        }
    }

    /// Adds a periodic disruptive event.
    pub fn with_event(mut self, event: DisruptiveEvent, every_uops: u32) -> Self {
        self.event = Some((event, every_uops.max(1)));
        self
    }

    /// Adds off-core memory traffic.
    pub fn with_memory_traffic(mut self, accesses_per_iter: u32) -> Self {
        self.memory_accesses_per_iter = accesses_per_iter;
        self
    }

    /// Runs the disrupted kernel with a given level of *other-core*
    /// contention on shared resources, in `[0, 1]` (0 = alone on the
    /// chip).
    pub fn run(&self, isa: &Isa, cfg: &CoreConfig, contention: f64) -> DisruptedMetrics {
        let base = PipelineSim::new(isa, cfg).run(&self.kernel.body, self.kernel.iterations, false);

        // Disruptive events: stall cycles and flush energy, scaled by the
        // injection rate.
        let (stall_cycles, event_energy, event_shared) = match self.event {
            Some((ev, every)) => {
                let events = base.uops / every as u64;
                let shared_factor = if ev.uses_shared_resource() {
                    1.0 + contention * 1.5
                } else {
                    1.0
                };
                (
                    events as f64 * ev.stall_cycles() as f64 * shared_factor,
                    events as f64 * ev.energy_pj(),
                    ev.uses_shared_resource(),
                )
            }
            None => (0.0, 0.0, false),
        };

        // Memory traffic: uncore energy plus shared-interface occupancy.
        let accesses = self.memory_accesses_per_iter as f64 * self.kernel.iterations as f64;
        let mem_cycles = accesses * MEMORY_ACCESS_SHARED_CYCLES * (1.0 + contention * 2.0);
        let mem_energy = accesses * MEMORY_ACCESS_ENERGY_PJ;

        let cycles = base.cycles as f64 + stall_cycles + mem_cycles;
        let energy_pj = base.energy_pj + event_energy + mem_energy;
        let power_w = cfg.static_power_w + energy_pj * 1e-12 * cfg.freq_hz / cycles;
        let metrics = RunMetrics {
            cycles: cycles as u64,
            uops: base.uops,
            ipc: base.uops as f64 / cycles,
            avg_power_w: power_w,
            avg_current_a: power_w / cfg.v_nom,
            energy_per_uop_pj: if base.uops == 0 {
                0.0
            } else {
                energy_pj / base.uops as f64
            },
        };

        // Loop-period variability: shared-resource service time varies
        // with the other cores' traffic; private events are deterministic.
        let shared_fraction = (if event_shared { stall_cycles } else { 0.0 } + mem_cycles) / cycles;
        let period_variability = shared_fraction * (0.1 + 0.5 * contention);

        DisruptedMetrics {
            metrics,
            period_variability,
        }
    }
}

/// The paper's three §IV-C findings, evaluated for a given max-power and
/// min-power sequence pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DisruptionStudy {
    /// Power of a loop dominated by disruptive events, watts.
    pub disruptive_power_w: f64,
    /// Power of the minimum-power sequence, watts.
    pub min_power_w: f64,
    /// Power of the maximum-power sequence, watts.
    pub max_power_w: f64,
    /// Power of the maximum sequence with added memory traffic, watts.
    pub max_with_memory_w: f64,
    /// Period variability of the core-contained maximum sequence.
    pub contained_variability: f64,
    /// Period variability of the memory-active sequence under contention.
    pub memory_variability: f64,
}

impl DisruptionStudy {
    /// Runs the study.
    pub fn run(isa: &Isa, cfg: &CoreConfig, max_body: &[Opcode], min_body: &[Opcode]) -> Self {
        let max_kernel = Kernel::from_sequence("max", max_body.to_vec(), 200);
        let min_kernel = Kernel::from_sequence("min", min_body.to_vec(), 40);

        let max_plain = DisruptedKernel::plain(max_kernel.clone()).run(isa, cfg, 0.0);
        let min_plain = DisruptedKernel::plain(min_kernel).run(isa, cfg, 0.0);
        // A "disruptive" low-power candidate: cheap ops with frequent
        // branch misses (the alternative the paper evaluated).
        let cheap = isa
            .iter()
            .filter(|(_, d)| d.latency <= 1 && !d.serializing && !d.ends_group)
            .min_by(|a, b| a.1.energy_pj.total_cmp(&b.1.energy_pj))
            .map(|(op, _)| op)
            .expect("cheap op exists");
        let disruptive = DisruptedKernel::plain(Kernel::from_sequence("disr", vec![cheap; 6], 200))
            .with_event(DisruptiveEvent::BranchMiss, 6)
            .run(isa, cfg, 0.0);
        let max_mem = DisruptedKernel::plain(max_kernel)
            .with_memory_traffic(2)
            .run(isa, cfg, 0.5);

        DisruptionStudy {
            disruptive_power_w: disruptive.metrics.avg_power_w,
            min_power_w: min_plain.metrics.avg_power_w,
            max_power_w: max_plain.metrics.avg_power_w,
            max_with_memory_w: max_mem.metrics.avg_power_w,
            contained_variability: max_plain.period_variability,
            memory_variability: max_mem.period_variability,
        }
    }

    /// Finding (a): the disruptive loop sits close to the minimum power.
    pub fn disruptive_close_to_minimum(&self) -> bool {
        let range = self.max_power_w - self.min_power_w;
        (self.disruptive_power_w - self.min_power_w).abs() < 0.25 * range
    }

    /// Finding (b): memory traffic does not raise the maximum power
    /// significantly (under 5 %).
    pub fn memory_gain_fraction(&self) -> f64 {
        (self.max_with_memory_w - self.max_power_w) / self.max_power_w
    }

    /// Finding (c): shared-resource activity inflates period variability.
    pub fn variability_ratio(&self) -> f64 {
        if self.contained_variability == 0.0 {
            f64::INFINITY
        } else {
            self.memory_variability / self.contained_variability
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn study() -> &'static (Isa, CoreConfig, DisruptionStudy) {
        static CELL: OnceLock<(Isa, CoreConfig, DisruptionStudy)> = OnceLock::new();
        CELL.get_or_init(|| {
            let isa = Isa::zlike();
            let cfg = CoreConfig::default();
            let max_body: Vec<Opcode> = ["CHHSI", "L", "CIB", "CHHSI", "MADBR", "CIB"]
                .iter()
                .map(|m| isa.opcode(m).unwrap())
                .collect();
            let min_body = vec![isa.opcode("SRNM").unwrap()];
            let s = DisruptionStudy::run(&isa, &cfg, &max_body, &min_body);
            (isa, cfg, s)
        })
    }

    #[test]
    fn finding_a_disruptive_events_are_near_minimum_power() {
        let (_, _, s) = study();
        assert!(
            s.disruptive_close_to_minimum(),
            "disruptive {:.2} W vs min {:.2} W / max {:.2} W",
            s.disruptive_power_w,
            s.min_power_w,
            s.max_power_w
        );
    }

    #[test]
    fn finding_b_memory_does_not_boost_max_power() {
        let (_, _, s) = study();
        let gain = s.memory_gain_fraction();
        assert!(gain < 0.05, "memory gain {:.3}", gain);
    }

    #[test]
    fn finding_c_shared_resources_hurt_stimulus_control() {
        let (_, _, s) = study();
        assert!(
            s.contained_variability < 1e-6,
            "core-contained loops are deterministic"
        );
        assert!(
            s.memory_variability > 0.01,
            "shared traffic must add variability"
        );
    }

    #[test]
    fn stalls_reduce_ipc_and_power() {
        let (isa, cfg, _) = study();
        let body: Vec<Opcode> = vec![isa.opcode("CHHSI").unwrap(); 12];
        let plain = DisruptedKernel::plain(Kernel::from_sequence("k", body.clone(), 100))
            .run(isa, cfg, 0.0);
        let missy = DisruptedKernel::plain(Kernel::from_sequence("k", body, 100))
            .with_event(DisruptiveEvent::L1Miss, 4)
            .run(isa, cfg, 0.0);
        assert!(missy.metrics.ipc < plain.metrics.ipc * 0.5);
        assert!(missy.metrics.avg_power_w < plain.metrics.avg_power_w);
    }

    #[test]
    fn contention_slows_shared_events_only() {
        let (isa, cfg, _) = study();
        let body: Vec<Opcode> = vec![isa.opcode("CHHSI").unwrap(); 12];
        let mk = |ev: DisruptiveEvent, cont: f64| {
            DisruptedKernel::plain(Kernel::from_sequence("k", body.clone(), 100))
                .with_event(ev, 6)
                .run(isa, cfg, cont)
                .metrics
                .ipc
        };
        // Branch misses are core-private: contention-independent.
        assert!(
            (mk(DisruptiveEvent::BranchMiss, 0.0) - mk(DisruptiveEvent::BranchMiss, 1.0)).abs()
                < 1e-12
        );
        // L3 misses slow down under contention.
        assert!(mk(DisruptiveEvent::L3Miss, 1.0) < mk(DisruptiveEvent::L3Miss, 0.0));
    }
}
