//! AC (phasor) analysis: frequency-domain impedance profiles.
//!
//! This reproduces the package-characterization flow the paper shows in
//! Figure 7b: sweep a sinusoidal unit current injected at an observation
//! port (with the DC sources shorted) and report the complex impedance
//! `Z(f) = V / I` seen at that port, or the transfer impedance to another
//! node.
//!
//! The solve path factors **once per frequency**: the stamped matrix
//! depends only on `ω`, so any number of injection nodes at one
//! frequency share a single factorization ([`AcAnalysis::impedance_batch`]
//! solves them as one multi-RHS batch). On the sparse path the
//! elimination order discovered at the first frequency is replayed at
//! every later one (the pattern never changes), skipping the Markowitz
//! search. Work is tallied in [`SolverCounters`] — telemetry only,
//! never part of results.

use crate::backend::Factorization;
use crate::complex::Complex;
use crate::error::PdnError;
use crate::linalg::Matrix;
use crate::mna::{MnaSystem, SolverBackend, SystemPattern};
use crate::netlist::{Netlist, NodeId};
use crate::sparse::{CsrMatrix, EliminationOrder, SparseLu};
use crate::telemetry::SolverCounters;
use std::cell::RefCell;
use std::sync::Arc;

/// One point of an impedance sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImpedancePoint {
    /// Frequency in hertz.
    pub freq_hz: f64,
    /// Complex impedance at that frequency.
    pub z: Complex,
}

impl ImpedancePoint {
    /// Impedance magnitude in ohms.
    pub fn magnitude(&self) -> f64 {
        self.z.abs()
    }
}

/// Frequency-domain analyzer over a fixed netlist.
///
/// # Examples
///
/// ```
/// use voltnoise_pdn::ac::AcAnalysis;
/// use voltnoise_pdn::netlist::{Netlist, NodeId};
///
/// # fn main() -> Result<(), voltnoise_pdn::PdnError> {
/// let mut nl = Netlist::new();
/// let die = nl.add_node("die");
/// nl.add_resistor(die, NodeId::GROUND, 0.001)?;
/// let ac = AcAnalysis::new(&nl);
/// let z = ac.impedance_at(die, 1e6)?;
/// assert!((z.abs() - 0.001).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AcAnalysis {
    sys: MnaSystem,
    backend: SolverBackend,
    /// Symbolic pattern for the sparse path, computed once at
    /// construction (the AC matrix has the same pattern at every
    /// frequency). `None` on the dense fast path.
    pattern: Option<Arc<SystemPattern>>,
    /// Interior-mutable solve state: work counters plus the cached
    /// sparse elimination order. `RefCell` (not `Mutex`) on purpose —
    /// an analyzer is a per-thread object; concurrent sweeps construct
    /// one analyzer each.
    state: RefCell<AcState>,
}

/// Mutable solve state of an [`AcAnalysis`].
#[derive(Debug, Clone, Default)]
struct AcState {
    counters: SolverCounters,
    /// Elimination order discovered at the first sparse factorization,
    /// replayed at every later frequency (same pattern, new values).
    elim: Option<EliminationOrder>,
}

impl AcAnalysis {
    /// Creates an analyzer for a snapshot of the netlist with automatic
    /// dense/sparse backend selection (see [`SolverBackend::Auto`]).
    pub fn new(netlist: &Netlist) -> Self {
        Self::with_backend(netlist, SolverBackend::Auto)
    }

    /// Creates an analyzer with an explicit backend choice; `Auto` is
    /// right for almost everything.
    pub fn with_backend(netlist: &Netlist, backend: SolverBackend) -> Self {
        let sys = MnaSystem::new(netlist);
        let pattern = if backend.is_sparse(sys.size()) {
            Some(Arc::new(SystemPattern::coupled(&sys)))
        } else {
            None
        };
        AcAnalysis {
            sys,
            backend,
            pattern,
            state: RefCell::new(AcState::default()),
        }
    }

    /// Whether this analyzer runs on the sparse path.
    pub fn uses_sparse(&self) -> bool {
        self.backend.is_sparse(self.sys.size())
    }

    /// Snapshot of the work counters this analyzer has accumulated
    /// (factorizations, solves, batched solves, estimated flops).
    /// Telemetry only — reading them never affects any result.
    pub fn counters(&self) -> SolverCounters {
        self.state.borrow().counters
    }

    /// Factors the AC system matrix at one frequency. Every injection
    /// at this frequency shares the returned factors; on the sparse
    /// path the first discovered elimination order is replayed for all
    /// later frequencies (counted as `pattern_reuses`).
    fn factor_at(&self, freq_hz: f64) -> Result<Factorization<Complex>, PdnError> {
        if !(freq_hz.is_finite() && freq_hz > 0.0) {
            return Err(PdnError::InvalidTimebase {
                reason: format!("AC analysis requires positive finite frequency, got {freq_hz}"),
            });
        }
        let n = self.sys.size();
        let omega = 2.0 * std::f64::consts::PI * freq_hz;
        let mut st = self.state.borrow_mut();
        match &self.pattern {
            Some(pattern) => {
                let mut m = CsrMatrix::<Complex>::zeros(pattern.clone());
                self.sys.stamp_ac(&mut m, omega);
                // Replay the cached pivot order when its threshold
                // check still passes at the new values; fall back to a
                // fresh Markowitz factorization (and re-cache) when not.
                let reused = st
                    .elim
                    .as_ref()
                    .and_then(|order| SparseLu::refactor(&m, order).ok());
                let lu = match reused {
                    Some(lu) => {
                        st.counters.pattern_reuses += 1;
                        lu
                    }
                    None => {
                        let lu = SparseLu::factor(&m)?;
                        st.elim = Some(lu.order());
                        lu
                    }
                };
                st.counters.lu_factorizations += 1;
                st.counters.est_flops += lu.factor_flops();
                Ok(Factorization::Sparse(lu))
            }
            None => {
                let mut g = Matrix::<Complex>::zeros(n, n);
                self.sys.stamp_ac(&mut g, omega);
                st.counters.lu_factorizations += 1;
                st.counters.est_flops += g.lu_flops();
                Ok(Factorization::Dense(g.lu()?))
            }
        }
    }

    fn solve_with_injection(&self, inject: NodeId, freq_hz: f64) -> Result<Vec<Complex>, PdnError> {
        // Unit sinusoidal current drawn out of the injection node (a load).
        let Some(idx) = inject.unknown_index() else {
            return Err(PdnError::UnknownNode { node: 0 });
        };
        let factors = self.factor_at(freq_hz)?;
        let n = self.sys.size();
        let mut rhs = vec![Complex::ZERO; n];
        rhs[idx] = -Complex::ONE;
        let mut x = vec![Complex::ZERO; n];
        factors.solve_into(&rhs, &mut x)?;
        let mut st = self.state.borrow_mut();
        st.counters.solve_calls += 1;
        st.counters.est_flops += factors.solve_flops();
        if factors.is_sparse() {
            st.counters.sparse_solves += 1;
        }
        Ok(x)
    }

    /// Self-impedances at several nodes for one frequency, solved as a
    /// single multi-RHS batch against **one** factorization — the
    /// "many injection ports, one matrix" case of a drawer
    /// characterization sweep. Results are bitwise identical to calling
    /// [`AcAnalysis::impedance_at`] per node (the batched triangular
    /// solves preserve per-column operation order); only the work
    /// differs: one factorization instead of `nodes.len()`.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] for non-positive frequency, ground
    /// injection, or a singular network.
    pub fn impedance_batch(
        &self,
        nodes: &[NodeId],
        freq_hz: f64,
    ) -> Result<Vec<Complex>, PdnError> {
        if nodes.is_empty() {
            return Ok(Vec::new());
        }
        let idxs: Vec<usize> = nodes
            .iter()
            .map(|nd| nd.unknown_index().ok_or(PdnError::UnknownNode { node: 0 }))
            .collect::<Result<_, _>>()?;
        let factors = self.factor_at(freq_hz)?;
        let n = self.sys.size();
        let k = idxs.len();
        let mut rhs = vec![Complex::ZERO; n * k];
        for (col, &idx) in idxs.iter().enumerate() {
            rhs[col * n + idx] = -Complex::ONE;
        }
        let mut x = vec![Complex::ZERO; n * k];
        factors.solve_batch_into(&rhs, &mut x)?;
        let mut st = self.state.borrow_mut();
        st.counters.solve_calls += k as u64;
        st.counters.batched_solves += k as u64;
        st.counters.est_flops += k as u64 * factors.solve_flops();
        if factors.is_sparse() {
            st.counters.sparse_solves += k as u64;
        }
        // The load draws +1 A at each port, so each node voltage is -Z.
        Ok(idxs
            .iter()
            .enumerate()
            .map(|(col, &idx)| -x[col * n + idx])
            .collect())
    }

    /// Impedance magnitude/phase seen *into the PDN* at `node` for a unit
    /// load current at `freq_hz`.
    ///
    /// The sign convention reports the droop impedance: a positive real
    /// part means the node voltage drops when load current is drawn.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] for non-positive frequency, ground injection,
    /// or a singular network.
    pub fn impedance_at(&self, node: NodeId, freq_hz: f64) -> Result<Complex, PdnError> {
        let sol = self.solve_with_injection(node, freq_hz)?;
        let idx = node
            .unknown_index()
            .ok_or(PdnError::UnknownNode { node: 0 })?;
        // The load draws +1 A, so the node voltage phasor is -Z.
        Ok(-sol[idx])
    }

    /// Transfer impedance: voltage response at `observe` per unit load
    /// current injected at `inject`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AcAnalysis::impedance_at`].
    pub fn transfer_impedance(
        &self,
        inject: NodeId,
        observe: NodeId,
        freq_hz: f64,
    ) -> Result<Complex, PdnError> {
        let sol = self.solve_with_injection(inject, freq_hz)?;
        let idx = observe
            .unknown_index()
            .ok_or(PdnError::UnknownNode { node: 0 })?;
        Ok(-sol[idx])
    }

    /// Sweeps the self-impedance at `node` over the given frequencies.
    ///
    /// Routed through the batched path ([`AcAnalysis::impedance_batch`]
    /// with a single injection per frequency), which is bitwise
    /// identical to the looped path — sweep-derived figures are pinned
    /// byte-for-byte on the dense backend.
    ///
    /// # Errors
    ///
    /// Fails on the first frequency that errors.
    pub fn sweep(&self, node: NodeId, freqs: &[f64]) -> Result<Vec<ImpedancePoint>, PdnError> {
        let ports = [node];
        freqs
            .iter()
            .map(|&f| {
                let z = self.impedance_batch(&ports, f)?;
                Ok(ImpedancePoint {
                    freq_hz: f,
                    z: z[0],
                })
            })
            .collect()
    }
}

/// Builds `count` log-spaced frequencies between `f_lo` and `f_hi`
/// (inclusive).
///
/// A degenerate span `f_lo == f_hi` is allowed and yields `count`
/// copies of that frequency (so a sweep collapsed to a single point is
/// a valid single-frequency sweep, not a silent divide-by-zero in the
/// spacing formula).
///
/// # Errors
///
/// Returns [`PdnError::InvalidTimebase`] unless `0 < f_lo <= f_hi`
/// (both finite), `count >= 1`, and additionally `count >= 2` whenever
/// `f_hi > f_lo` (two distinct endpoints cannot be covered by one
/// point).
///
/// # Examples
///
/// ```
/// let f = voltnoise_pdn::ac::log_space(1e3, 1e6, 4).unwrap();
/// assert_eq!(f.len(), 4);
/// assert!((f[0] - 1e3).abs() < 1e-9);
/// assert!((f[3] - 1e6).abs() < 1e-3);
/// ```
pub fn log_space(f_lo: f64, f_hi: f64, count: usize) -> Result<Vec<f64>, PdnError> {
    if !(f_lo.is_finite() && f_hi.is_finite() && f_lo > 0.0 && f_hi >= f_lo) {
        return Err(PdnError::InvalidTimebase {
            reason: format!("log_space requires 0 < f_lo <= f_hi, got [{f_lo}, {f_hi}]"),
        });
    }
    if count == 0 {
        return Err(PdnError::InvalidTimebase {
            reason: "log_space requires count >= 1".to_string(),
        });
    }
    if f_hi == f_lo {
        return Ok(vec![f_lo; count]);
    }
    if count < 2 {
        return Err(PdnError::InvalidTimebase {
            reason: format!("log_space requires count >= 2, got {count}"),
        });
    }
    let l0 = f_lo.ln();
    let l1 = f_hi.ln();
    Ok((0..count)
        .map(|i| (l0 + (l1 - l0) * i as f64 / (count - 1) as f64).exp())
        .collect())
}

/// Finds local maxima ("resonance peaks") of an impedance sweep, returning
/// `(freq_hz, magnitude)` pairs sorted by descending magnitude.
///
/// Only *interior* maxima count: a profile rising monotonically into an
/// endpoint returns no peaks (use [`find_peaks_with_endpoints`] when
/// sweep-edge resonances matter). A monotone or flat profile therefore
/// yields an empty, not erroneous, result.
///
/// **Plateau tie-break:** a sample is a peak when it strictly exceeds
/// its left neighbor and is at least its right neighbor (`>` left,
/// `>=` right). When a resonance lands between sweep points and two
/// adjacent samples share the maximum magnitude, exactly the
/// *leftmost* (lowest-frequency) sample of the plateau is reported —
/// later plateau samples fail the strict left comparison — so a
/// plateau never double-counts as two peaks and the reported
/// frequency is deterministic.
///
/// # Errors
///
/// Returns [`PdnError::EmptyProfile`] for an empty profile — asking for
/// the resonances of nothing is a caller bug (typically a sweep that
/// silently produced no points), not a "no peaks found" answer.
pub fn find_peaks(profile: &[ImpedancePoint]) -> Result<Vec<(f64, f64)>, PdnError> {
    if profile.is_empty() {
        return Err(PdnError::EmptyProfile);
    }
    let mut peaks = Vec::new();
    for i in 1..profile.len().saturating_sub(1) {
        let m = profile[i].magnitude();
        if m > profile[i - 1].magnitude() && m >= profile[i + 1].magnitude() {
            peaks.push((profile[i].freq_hz, m));
        }
    }
    peaks.sort_by(|a, b| b.1.total_cmp(&a.1));
    Ok(peaks)
}

/// Like [`find_peaks`], but endpoints may qualify: the first point
/// counts when it is at least its successor, the last when it strictly
/// exceeds its predecessor (mirroring the interior tie-breaking), and a
/// single-point profile is its own peak. Use for truncated sweeps whose
/// resonance may sit at the sweep edge.
///
/// # Errors
///
/// Returns [`PdnError::EmptyProfile`] for an empty profile.
pub fn find_peaks_with_endpoints(profile: &[ImpedancePoint]) -> Result<Vec<(f64, f64)>, PdnError> {
    let mut peaks = find_peaks(profile)?;
    if profile.len() == 1 {
        peaks.push((profile[0].freq_hz, profile[0].magnitude()));
    } else {
        let first = profile[0].magnitude();
        if first >= profile[1].magnitude() {
            peaks.push((profile[0].freq_hz, first));
        }
        let last = profile[profile.len() - 1].magnitude();
        if last > profile[profile.len() - 2].magnitude() {
            peaks.push((profile[profile.len() - 1].freq_hz, last));
        }
    }
    peaks.sort_by(|a, b| b.1.total_cmp(&a.1));
    Ok(peaks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resistor_impedance_is_flat() {
        let mut nl = Netlist::new();
        let die = nl.add_node("die");
        nl.add_resistor(die, NodeId::GROUND, 0.002).unwrap();
        let ac = AcAnalysis::new(&nl);
        for f in [1e3, 1e5, 1e7] {
            let z = ac.impedance_at(die, f).unwrap();
            assert!((z.abs() - 0.002).abs() < 1e-12);
            assert!(z.re > 0.0, "droop sign convention");
        }
    }

    #[test]
    fn capacitor_impedance_falls_with_frequency() {
        let mut nl = Netlist::new();
        let die = nl.add_node("die");
        nl.add_resistor(die, NodeId::GROUND, 1e6).unwrap(); // DC path
        nl.add_capacitor(die, NodeId::GROUND, 1e-6).unwrap();
        let ac = AcAnalysis::new(&nl);
        let z1 = ac.impedance_at(die, 1e4).unwrap().abs();
        let z2 = ac.impedance_at(die, 1e5).unwrap().abs();
        assert!((z1 / z2 - 10.0).abs() < 0.01, "z1={z1} z2={z2}");
        // |Z| = 1/(2*pi*f*C)
        let expected = 1.0 / (2.0 * std::f64::consts::PI * 1e4 * 1e-6);
        assert!((z1 - expected).abs() / expected < 1e-3);
    }

    #[test]
    fn parallel_rlc_peaks_at_resonance() {
        // Source inductance vs die capacitance: anti-resonance peak.
        let l: f64 = 1e-9;
        let c: f64 = 1e-6;
        let f_res = 1.0 / (2.0 * std::f64::consts::PI * (l * c).sqrt());
        let mut nl = Netlist::new();
        let vdd = nl.add_node("vdd");
        nl.add_voltage_source(vdd, NodeId::GROUND, 1.0).unwrap();
        let die = nl.add_node("die");
        nl.add_series_rl(vdd, die, 1e-4, l).unwrap();
        nl.add_capacitor(die, NodeId::GROUND, c).unwrap();

        let ac = AcAnalysis::new(&nl);
        let freqs = log_space(1e5, 1e8, 200).unwrap();
        let profile = ac.sweep(die, &freqs).unwrap();
        let peaks = find_peaks(&profile).unwrap();
        assert!(!peaks.is_empty());
        let (f_peak, _) = peaks[0];
        assert!(
            (f_peak - f_res).abs() / f_res < 0.1,
            "peak {f_peak:.3e} vs resonance {f_res:.3e}"
        );
    }

    #[test]
    fn transfer_impedance_attenuates_across_resistor() {
        let mut nl = Netlist::new();
        let a = nl.add_node("a");
        let b = nl.add_node("b");
        nl.add_resistor(a, NodeId::GROUND, 0.01).unwrap();
        nl.add_resistor(b, NodeId::GROUND, 0.01).unwrap();
        nl.add_resistor(a, b, 0.01).unwrap();
        let ac = AcAnalysis::new(&nl);
        let z_self = ac.impedance_at(a, 1e6).unwrap().abs();
        let z_xfer = ac.transfer_impedance(a, b, 1e6).unwrap().abs();
        assert!(z_xfer < z_self);
        assert!(z_xfer > 0.0);
    }

    #[test]
    fn rejects_bad_frequency() {
        let mut nl = Netlist::new();
        let die = nl.add_node("die");
        nl.add_resistor(die, NodeId::GROUND, 1.0).unwrap();
        let ac = AcAnalysis::new(&nl);
        assert!(ac.impedance_at(die, 0.0).is_err());
        assert!(ac.impedance_at(die, -5.0).is_err());
        assert!(ac.impedance_at(die, f64::NAN).is_err());
    }

    #[test]
    fn log_space_is_monotonic() {
        let f = log_space(1e3, 1e8, 50).unwrap();
        assert!(f.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn log_space_rejects_bad_bounds() {
        assert!(log_space(0.0, 1e6, 10).is_err());
        assert!(log_space(1e6, 1e3, 10).is_err());
        assert!(log_space(f64::NAN, 1e6, 10).is_err());
        assert!(log_space(1e3, f64::INFINITY, 10).is_err());
        assert!(log_space(1e3, 1e6, 1).is_err());
        assert!(log_space(1e3, 1e6, 0).is_err());
        assert!(log_space(1e3, 1e3, 0).is_err());
    }

    #[test]
    fn log_space_degenerate_span_repeats_the_point() {
        let f = log_space(2e6, 2e6, 1).unwrap();
        assert_eq!(f, vec![2e6]);
        let f = log_space(2e6, 2e6, 3).unwrap();
        assert_eq!(f, vec![2e6, 2e6, 2e6]);
    }

    fn profile_of(mags: &[f64]) -> Vec<ImpedancePoint> {
        mags.iter()
            .enumerate()
            .map(|(i, &m)| ImpedancePoint {
                freq_hz: (i + 1) as f64,
                z: Complex::from_real(m),
            })
            .collect()
    }

    #[test]
    fn find_peaks_orders_by_magnitude() {
        let peaks = find_peaks(&profile_of(&[1.0, 3.0, 1.0, 5.0, 1.0])).unwrap();
        assert_eq!(peaks.len(), 2);
        assert_eq!(peaks[0].0, 4.0);
        assert_eq!(peaks[1].0, 2.0);
    }

    /// Regression test for plateau maxima: when a resonance lands
    /// between sweep points and two adjacent samples tie at the peak
    /// magnitude, exactly one peak is reported, at the leftmost
    /// (lowest-frequency) sample of the plateau.
    #[test]
    fn find_peaks_plateau_reports_leftmost_sample_once() {
        // Two-sample plateau at the maximum.
        let peaks = find_peaks(&profile_of(&[1.0, 3.0, 3.0, 1.0])).unwrap();
        assert_eq!(peaks, vec![(2.0, 3.0)]);
        // Three-sample plateau still yields a single leftmost peak.
        let peaks = find_peaks(&profile_of(&[1.0, 4.0, 4.0, 4.0, 2.0])).unwrap();
        assert_eq!(peaks, vec![(2.0, 4.0)]);
        // A plateau running into the right endpoint still reports its
        // leftmost interior sample (the `>=` right comparison).
        let peaks = find_peaks(&profile_of(&[1.0, 3.0, 3.0])).unwrap();
        assert_eq!(peaks, vec![(2.0, 3.0)]);
        let peaks = find_peaks(&profile_of(&[1.0, 2.0, 3.0, 3.0])).unwrap();
        assert_eq!(peaks, vec![(3.0, 3.0)]);
        // Endpoint variant keeps the same plateau rule and does not
        // double-count the interior plateau peak.
        let peaks = find_peaks_with_endpoints(&profile_of(&[1.0, 3.0, 3.0, 1.0])).unwrap();
        assert_eq!(peaks, vec![(2.0, 3.0)]);
    }

    #[test]
    fn find_peaks_rejects_empty_profile() {
        assert_eq!(find_peaks(&[]), Err(PdnError::EmptyProfile));
        assert_eq!(find_peaks_with_endpoints(&[]), Err(PdnError::EmptyProfile));
    }

    #[test]
    fn monotone_profile_has_no_interior_peaks() {
        assert!(find_peaks(&profile_of(&[1.0, 2.0, 3.0, 4.0]))
            .unwrap()
            .is_empty());
        assert!(find_peaks(&profile_of(&[4.0, 3.0, 2.0, 1.0]))
            .unwrap()
            .is_empty());
        assert!(find_peaks(&profile_of(&[2.0, 2.0, 2.0]))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn endpoint_peaks_are_found_when_asked() {
        // Rising into the right endpoint.
        let rising = profile_of(&[1.0, 2.0, 3.0]);
        assert!(find_peaks(&rising).unwrap().is_empty());
        let peaks = find_peaks_with_endpoints(&rising).unwrap();
        assert_eq!(peaks, vec![(3.0, 3.0)]);
        // Falling from the left endpoint.
        let falling = profile_of(&[3.0, 2.0, 1.0]);
        let peaks = find_peaks_with_endpoints(&falling).unwrap();
        assert_eq!(peaks, vec![(1.0, 3.0)]);
        // A single point is its own peak.
        let single = profile_of(&[7.0]);
        let peaks = find_peaks_with_endpoints(&single).unwrap();
        assert_eq!(peaks, vec![(1.0, 7.0)]);
        // Both interior and endpoint peaks, ordered by magnitude.
        let both = profile_of(&[1.0, 5.0, 1.0, 9.0]);
        let peaks = find_peaks_with_endpoints(&both).unwrap();
        assert_eq!(peaks, vec![(4.0, 9.0), (2.0, 5.0)]);
    }

    #[test]
    fn batch_matches_looped_bitwise_and_counts_work() {
        let mut nl = Netlist::new();
        let vdd = nl.add_node("vdd");
        nl.add_voltage_source(vdd, NodeId::GROUND, 1.0).unwrap();
        let mut ports = Vec::new();
        let mut prev = vdd;
        for i in 0..5 {
            let n = nl.add_node(format!("n{i}"));
            nl.add_series_rl(prev, n, 1e-4 * (i + 1) as f64, 0.3e-9)
                .unwrap();
            nl.add_capacitor_with_esr(n, NodeId::GROUND, 2e-6, 0.5e-3)
                .unwrap();
            ports.push(n);
            prev = n;
        }
        for backend in [SolverBackend::Dense, SolverBackend::Sparse] {
            // Fresh analyzers so the looped reference pays one
            // factorization per injection, exactly as the batch's
            // single factorization must reproduce.
            let looped = AcAnalysis::with_backend(&nl, backend);
            let batched = AcAnalysis::with_backend(&nl, backend);
            for f in [1e5, 3e6, 5e7] {
                let zb = batched.impedance_batch(&ports, f).unwrap();
                assert_eq!(zb.len(), ports.len());
                for (i, &p) in ports.iter().enumerate() {
                    let zl = looped.impedance_at(p, f).unwrap();
                    assert_eq!(
                        zl.re.to_bits(),
                        zb[i].re.to_bits(),
                        "{backend:?} re {f} {i}"
                    );
                    assert_eq!(
                        zl.im.to_bits(),
                        zb[i].im.to_bits(),
                        "{backend:?} im {f} {i}"
                    );
                }
            }
            let cl = looped.counters();
            let cb = batched.counters();
            // One factorization per frequency instead of one per
            // (frequency, injection) pair.
            assert_eq!(cb.lu_factorizations, 3);
            assert_eq!(cl.lu_factorizations, 3 * ports.len() as u64);
            assert_eq!(cb.batched_solves, 3 * ports.len() as u64);
            assert_eq!(cl.batched_solves, 0);
            assert_eq!(cb.solve_calls, cl.solve_calls);
            assert!(cb.est_flops < cl.est_flops);
        }
    }

    #[test]
    fn sparse_sweep_reuses_elimination_order() {
        let mut nl = Netlist::new();
        let vdd = nl.add_node("vdd");
        nl.add_voltage_source(vdd, NodeId::GROUND, 1.0).unwrap();
        let die = nl.add_node("die");
        nl.add_series_rl(vdd, die, 1e-4, 1e-9).unwrap();
        nl.add_capacitor_with_esr(die, NodeId::GROUND, 1e-6, 1e-3)
            .unwrap();
        let ac = AcAnalysis::with_backend(&nl, SolverBackend::Sparse);
        let freqs = log_space(1e4, 1e8, 12).unwrap();
        ac.sweep(die, &freqs).unwrap();
        let c = ac.counters();
        assert_eq!(c.lu_factorizations, 12);
        // Every frequency after the first replays the cached order.
        assert_eq!(c.pattern_reuses, 11);
        assert_eq!(c.sparse_solves, 12);
    }

    #[test]
    fn batch_rejects_ground_port_and_allows_empty() {
        let mut nl = Netlist::new();
        let die = nl.add_node("die");
        nl.add_resistor(die, NodeId::GROUND, 1.0).unwrap();
        let ac = AcAnalysis::new(&nl);
        assert!(ac.impedance_batch(&[die, NodeId::GROUND], 1e6).is_err());
        assert!(ac.impedance_batch(&[], 1e6).unwrap().is_empty());
    }

    #[test]
    fn forced_sparse_ac_matches_dense() {
        let mut nl = Netlist::new();
        let vdd = nl.add_node("vdd");
        nl.add_voltage_source(vdd, NodeId::GROUND, 1.0).unwrap();
        let die = nl.add_node("die");
        nl.add_series_rl(vdd, die, 1e-4, 1e-9).unwrap();
        nl.add_capacitor_with_esr(die, NodeId::GROUND, 1e-6, 1e-3)
            .unwrap();
        let dense = AcAnalysis::with_backend(&nl, SolverBackend::Dense);
        let sparse = AcAnalysis::with_backend(&nl, SolverBackend::Sparse);
        assert!(!dense.uses_sparse());
        assert!(sparse.uses_sparse());
        for f in [1e4, 1e6, 5e6, 1e8] {
            let zd = dense.impedance_at(die, f).unwrap();
            let zs = sparse.impedance_at(die, f).unwrap();
            assert!(
                (zd.re - zs.re).abs() < 1e-9,
                "re {f}: {} vs {}",
                zd.re,
                zs.re
            );
            assert!(
                (zd.im - zs.im).abs() < 1e-9,
                "im {f}: {} vs {}",
                zd.im,
                zs.im
            );
        }
    }
}
