//! A small blocking HTTP/1.1 client for the daemon's API: used by the
//! `voltnoise-client` binary, the fleet router, the integration tests
//! and the benchmark harness. Understands `Content-Length` and chunked
//! bodies (the streamed-results encoding) and nothing else.
//!
//! Two entry points:
//!
//! - [`http_request`] — one-shot, `Connection: close`, reads to EOF.
//!   Fine for a single probe; pays a connect per call.
//! - [`HttpClient`] — a persistent keep-alive connection with framed
//!   reads (exact `Content-Length`, incremental chunk decoding), so
//!   routed retries and health probes skip the per-request connect,
//!   and streamed `/jobs` lines can be observed *as they arrive*
//!   (which is what lets the chaos harness kill a worker mid-batch).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Decoded body (chunked bodies are reassembled).
    pub body: String,
}

impl Response {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body split into non-empty lines — the shape of a streamed
    /// `/jobs` response (one JSON document per line).
    pub fn lines(&self) -> Vec<&str> {
        self.body.lines().filter(|l| !l.is_empty()).collect()
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Sends one request and reads the full response.
///
/// # Errors
///
/// Returns an I/O error on connection failure, timeout, or a response
/// this client cannot frame.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    read_response(&mut stream)
}

fn read_response(stream: &mut TcpStream) -> io::Result<Response> {
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    // The server closes after each response, so read to EOF; the
    // per-read timeout still bounds a stalled peer.
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&buf[..n]),
            Err(e) => return Err(e),
        }
    }
    let raw = String::from_utf8(raw).map_err(|_| bad("response is not UTF-8"))?;
    let (head, rest) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("response has no header terminator"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("bad status line: {status_line:?}")))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        decode_chunked(rest)?
    } else {
        rest.to_string()
    };
    Ok(Response {
        status,
        headers,
        body,
    })
}

fn decode_chunked(mut rest: &str) -> io::Result<String> {
    let mut body = String::new();
    loop {
        let (size_line, after) = rest
            .split_once("\r\n")
            .ok_or_else(|| bad("truncated chunk size line"))?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| bad(format!("bad chunk size: {size_line:?}")))?;
        if size == 0 {
            return Ok(body);
        }
        if after.len() < size + 2 {
            return Err(bad("truncated chunk payload"));
        }
        body.push_str(&after[..size]);
        rest = &after[size + 2..];
    }
}

/// A persistent keep-alive HTTP/1.1 connection to one daemon address.
///
/// Responses are framed (never read-to-EOF), so the connection survives
/// between requests; a stale connection — the server closed it at its
/// requests-per-connection bound or idle timeout — is detected before
/// any response byte arrives and transparently replaced by exactly one
/// reconnect-and-resend. Once response bytes have been seen, errors
/// propagate instead (a resend could duplicate observed stream lines).
pub struct HttpClient {
    addr: String,
    timeout: Duration,
    conn: Option<BufReader<TcpStream>>,
    connected_once: bool,
    reconnects: u64,
}

/// Why one send/receive attempt failed, and whether a resend on a
/// fresh connection is safe (no response byte was consumed).
struct AttemptError {
    err: io::Error,
    resend_safe: bool,
}

impl HttpClient {
    /// A client for `addr`; connects lazily on the first request.
    pub fn new(addr: impl Into<String>, timeout: Duration) -> HttpClient {
        HttpClient {
            addr: addr.into(),
            timeout,
            conn: None,
            connected_once: false,
            reconnects: 0,
        }
    }

    /// The address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Connections established after the first (a proxy for how often
    /// keep-alive reuse failed); the benchmark asserts this stays 0 on
    /// a healthy server.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Drops the current connection; the next request reconnects.
    pub fn reset(&mut self) {
        self.conn = None;
    }

    /// Sends one request and reads the full framed response.
    ///
    /// # Errors
    ///
    /// Returns an I/O error on connection failure, timeout, or a
    /// response this client cannot frame.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<Response> {
        self.request_streaming(method, path, body, &mut |_| true)
    }

    /// Like [`HttpClient::request`], but delivers each complete
    /// newline-terminated line of a chunked body to `on_line` as it
    /// arrives. Returning `false` from the callback aborts the
    /// connection immediately — the chaos harness's client-side
    /// "connection reset" injection — and surfaces as
    /// [`io::ErrorKind::ConnectionAborted`].
    ///
    /// # Errors
    ///
    /// Returns an I/O error on connection failure, timeout, callback
    /// abort, or a response this client cannot frame.
    pub fn request_streaming(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        on_line: &mut dyn FnMut(&str) -> bool,
    ) -> io::Result<Response> {
        let reused = self.conn.is_some();
        match self.attempt(method, path, body, on_line) {
            Ok(response) => Ok(response),
            Err(AttemptError { err, resend_safe }) => {
                self.conn = None;
                if reused && resend_safe {
                    // The server closed the idle connection between our
                    // requests; one fresh connection retries the send.
                    self.attempt(method, path, body, on_line)
                        .map_err(|second| second.err)
                } else {
                    Err(err)
                }
            }
        }
    }

    fn connect(&mut self) -> io::Result<()> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        if self.connected_once {
            self.reconnects += 1;
        }
        self.connected_once = true;
        self.conn = Some(BufReader::new(stream));
        Ok(())
    }

    fn attempt(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        on_line: &mut dyn FnMut(&str) -> bool,
    ) -> Result<Response, AttemptError> {
        let first_use = self.conn.is_none();
        if first_use {
            self.connect().map_err(|err| AttemptError {
                err,
                // A failed connect consumed nothing, but resending
                // cannot help either — the next connect would fail the
                // same way; only a *stale reused* connection warrants it.
                resend_safe: false,
            })?;
        }
        let reader = self.conn.as_mut().expect("connected above");
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            self.addr,
            body.len()
        );
        let send = |stream: &mut TcpStream| -> io::Result<()> {
            stream.write_all(head.as_bytes())?;
            stream.write_all(body.as_bytes())?;
            stream.flush()
        };
        // Writes to a half-closed keep-alive socket may "succeed" into
        // the kernel buffer, so stale detection must also cover the
        // status-line read below; both are resend-safe on a reused
        // connection because no response byte has been consumed yet.
        send(reader.get_mut()).map_err(|err| AttemptError {
            err,
            resend_safe: !first_use,
        })?;
        let mut status_line = String::new();
        let got = reader
            .read_line(&mut status_line)
            .map_err(|err| AttemptError {
                err,
                resend_safe: !first_use,
            })?;
        if got == 0 {
            return Err(AttemptError {
                err: io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed by server"),
                resend_safe: !first_use,
            });
        }
        // A response byte arrived: from here on, failures propagate.
        self.read_rest(&status_line, on_line)
            .map_err(|err| AttemptError {
                err,
                resend_safe: false,
            })
    }

    fn read_rest(
        &mut self,
        status_line: &str,
        on_line: &mut dyn FnMut(&str) -> bool,
    ) -> io::Result<Response> {
        // Take the connection out for the read; it only goes back if
        // the response parsed cleanly and the server keeps it open, so
        // every error path leaves the client ready to reconnect.
        let mut reader = self.conn.take().expect("connection present");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(format!("bad status line: {status_line:?}")))?;
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                return Err(bad("connection closed inside response headers"));
            }
            let line = line.trim_end_matches(['\r', '\n']);
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        let chunked = headers
            .iter()
            .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
        let body = if chunked {
            read_chunked_streaming(&mut reader, on_line)?
        } else {
            let declared = headers
                .iter()
                .find(|(k, _)| k == "content-length")
                .and_then(|(_, v)| v.parse::<usize>().ok())
                .unwrap_or(0);
            let mut raw = vec![0u8; declared];
            reader.read_exact(&mut raw)?;
            String::from_utf8(raw).map_err(|_| bad("response body is not UTF-8"))?
        };
        let server_closes = headers
            .iter()
            .any(|(k, v)| k == "connection" && v.eq_ignore_ascii_case("close"));
        if !server_closes {
            self.conn = Some(reader);
        }
        Ok(Response {
            status,
            headers,
            body,
        })
    }
}

/// Decodes a chunked body incrementally off the wire, surfacing each
/// complete newline-terminated line to `on_line` as soon as its chunk
/// arrives. Returns the reassembled body.
fn read_chunked_streaming(
    reader: &mut BufReader<TcpStream>,
    on_line: &mut dyn FnMut(&str) -> bool,
) -> io::Result<String> {
    let mut body = String::new();
    // Start of the first line in `body` not yet delivered to `on_line`.
    let mut delivered = 0;
    loop {
        let mut size_line = String::new();
        if reader.read_line(&mut size_line)? == 0 {
            return Err(bad("connection closed inside chunked body"));
        }
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| bad(format!("bad chunk size: {size_line:?}")))?;
        if size == 0 {
            // Trailing CRLF after the last chunk.
            let mut terminator = String::new();
            reader.read_line(&mut terminator)?;
            return Ok(body);
        }
        let mut chunk = vec![0u8; size + 2];
        reader.read_exact(&mut chunk)?;
        if !chunk.ends_with(b"\r\n") {
            return Err(bad("chunk payload missing CRLF terminator"));
        }
        chunk.truncate(size);
        let chunk = String::from_utf8(chunk).map_err(|_| bad("chunk is not UTF-8"))?;
        body.push_str(&chunk);
        while let Some(offset) = body[delivered..].find('\n') {
            let end = delivered + offset + 1;
            let line = body[delivered..end].trim_end_matches('\n');
            if !line.is_empty() && !on_line(line) {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    "stream aborted by caller",
                ));
            }
            delivered = end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_bodies_reassemble() {
        let encoded = "5\r\nhello\r\n8\r\n, world\n\r\n0\r\n\r\n";
        assert_eq!(decode_chunked(encoded).unwrap(), "hello, world\n");
    }

    #[test]
    fn truncated_chunks_error_instead_of_panicking() {
        assert!(decode_chunked("5\r\nhel").is_err());
        assert!(decode_chunked("zz\r\nhello\r\n").is_err());
        assert!(decode_chunked("").is_err());
    }

    #[test]
    fn response_lines_filters_blanks() {
        let r = Response {
            status: 200,
            headers: vec![],
            body: "a\n\nb\n".to_string(),
        };
        assert_eq!(r.lines(), vec!["a", "b"]);
    }
}
