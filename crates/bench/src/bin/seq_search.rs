//! Regenerates the paper's Fig. 5 search funnel: candidate selection,
//! 531 441 combinations, microarchitectural and IPC filters, and the
//! winning maximum-power sequence.

use voltnoise::prelude::*;
use voltnoise_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let tb = if opts.reduced { Testbed::fast() } else { Testbed::shared() };
    let funnel = FunnelSummary::from_testbed(tb);
    opts.finish(&funnel.render(), &funnel);
}
