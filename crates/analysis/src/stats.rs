//! Statistics used by the noise-propagation analyses (paper §VI).

use serde::{Deserialize, Serialize};
use voltnoise_pdn::topology::NUM_CORES;

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Pearson correlation coefficient of two equal-length series.
///
/// Returns 0 when either series is constant (no linear relation defined).
///
/// # Panics
///
/// Panics if the series lengths differ.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series lengths differ");
    if a.len() < 2 {
        return 0.0;
    }
    let (ma, mb) = (mean(a), mean(b));
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

/// A 6×6 inter-core correlation matrix (Fig. 13a).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelationMatrix {
    values: [[f64; NUM_CORES]; NUM_CORES],
}

impl CorrelationMatrix {
    /// Computes pairwise Pearson correlations of per-core noise series:
    /// `series[i]` holds core `i`'s reading in every experiment.
    ///
    /// # Panics
    ///
    /// Panics if the series have differing lengths.
    pub fn from_series(series: &[Vec<f64>; NUM_CORES]) -> Self {
        let mut values = [[0.0; NUM_CORES]; NUM_CORES];
        for (i, row) in values.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = if i == j {
                    1.0
                } else {
                    pearson(&series[i], &series[j])
                };
            }
        }
        CorrelationMatrix { values }
    }

    /// Correlation between cores `i` and `j`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.values[i][j]
    }

    /// Minimum off-diagonal correlation (the paper reports all > 0.91).
    pub fn min_off_diagonal(&self) -> f64 {
        let mut m = f64::INFINITY;
        for i in 0..NUM_CORES {
            for j in 0..NUM_CORES {
                if i != j {
                    m = m.min(self.values[i][j]);
                }
            }
        }
        m
    }

    /// Mean correlation within a group of cores (off-diagonal pairs only).
    pub fn mean_within(&self, group: &[usize]) -> f64 {
        let mut acc = Vec::new();
        for (k, &i) in group.iter().enumerate() {
            for &j in &group[k + 1..] {
                acc.push(self.values[i][j]);
            }
        }
        mean(&acc)
    }

    /// Mean correlation between two disjoint groups.
    pub fn mean_between(&self, a: &[usize], b: &[usize]) -> f64 {
        let mut acc = Vec::new();
        for &i in a {
            for &j in b {
                acc.push(self.values[i][j]);
            }
        }
        mean(&acc)
    }

    /// Splits the cores into two clusters by greedy agglomeration on
    /// correlation, returning `(cluster_a, cluster_b)` with `a` holding
    /// core 0. The paper detects {0, 2, 4} vs {1, 3, 5}.
    pub fn two_clusters(&self) -> (Vec<usize>, Vec<usize>) {
        // Assign each non-seed core to whichever seed (0 or its least
        // correlated partner) it correlates with more.
        let seed_a = 0usize;
        // Seed B: the core least correlated with core 0.
        let seed_b = (1..NUM_CORES)
            .min_by(|&i, &j| self.values[seed_a][i].total_cmp(&self.values[seed_a][j]))
            .expect("more than one core");
        let mut a = vec![seed_a];
        let mut b = vec![seed_b];
        for k in 0..NUM_CORES {
            if k == seed_a || k == seed_b {
                continue;
            }
            if self.values[seed_a][k] >= self.values[seed_b][k] {
                a.push(k);
            } else {
                b.push(k);
            }
        }
        a.sort_unstable();
        b.sort_unstable();
        (a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_dev_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!((std_dev(&[1.0, 1.0, 1.0])).abs() < 1e-12);
        assert!((std_dev(&[0.0, 2.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_identical_series_is_one() {
        let a = vec![1.0, 3.0, 2.0, 5.0];
        assert!((pearson(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_negated_series_is_minus_one() {
        let a = vec![1.0, 3.0, 2.0, 5.0];
        let b: Vec<f64> = a.iter().map(|x| -x).collect();
        assert!((pearson(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_series_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    fn clustered_matrix() -> CorrelationMatrix {
        // Two clusters {0,2,4} and {1,3,5}: high inside, lower across.
        let mut series: [Vec<f64>; NUM_CORES] = Default::default();
        let base_a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 5.0, 3.0];
        let base_b = [2.0, 1.0, 4.0, 3.0, 6.0, 5.0, 3.0, 5.0];
        for (i, out) in series.iter_mut().enumerate() {
            let base = if i % 2 == 0 { &base_a } else { &base_b };
            *out = base
                .iter()
                .enumerate()
                .map(|(k, v)| v + 0.05 * ((i * 7 + k * 3) % 5) as f64)
                .collect();
        }
        CorrelationMatrix::from_series(&series)
    }

    #[test]
    fn diagonal_is_one_and_matrix_symmetric() {
        let m = clustered_matrix();
        for i in 0..NUM_CORES {
            assert_eq!(m.get(i, i), 1.0);
            for j in 0..NUM_CORES {
                assert!((m.get(i, j) - m.get(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn two_clusters_recovers_even_odd_split() {
        let m = clustered_matrix();
        let (a, b) = m.two_clusters();
        assert_eq!(a, vec![0, 2, 4]);
        assert_eq!(b, vec![1, 3, 5]);
        assert!(m.mean_within(&a) > m.mean_between(&a, &b));
    }

    #[test]
    fn min_off_diagonal_bounds_all_pairs() {
        let m = clustered_matrix();
        let lo = m.min_off_diagonal();
        for i in 0..NUM_CORES {
            for j in 0..NUM_CORES {
                if i != j {
                    assert!(m.get(i, j) >= lo - 1e-12);
                }
            }
        }
    }
}
