//! Noise-aware workload-mapping opportunity (paper Fig. 15).
//!
//! For every number of workloads 0–6, evaluate all core assignments and
//! compare the best (lowest worst-case noise) against the worst mapping.

use serde::{Deserialize, Serialize};
use voltnoise_pdn::topology::NUM_CORES;
use voltnoise_pdn::PdnError;
use voltnoise_stressmark::SyncSpec;
use voltnoise_system::mapping::{evaluate_all_mappings, NoiseAwareMapper};
use voltnoise_system::noise::NoiseRunConfig;
use voltnoise_system::testbed::Testbed;

/// Mapping-gain study configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingGainConfig {
    /// Stimulus frequency of the stressmarks.
    pub stim_freq_hz: f64,
    /// Workload counts to evaluate.
    pub counts: Vec<usize>,
    /// Simulation window per run.
    pub window_s: Option<f64>,
}

impl MappingGainConfig {
    /// Paper-style: 0 through 6 workloads, all mappings (64 runs).
    pub fn paper() -> Self {
        MappingGainConfig {
            stim_freq_hz: 2.5e6,
            counts: (0..=NUM_CORES).collect(),
            window_s: Some(50e-6),
        }
    }

    /// Reduced for tests.
    pub fn reduced() -> Self {
        MappingGainConfig {
            stim_freq_hz: 2.5e6,
            counts: vec![2, 3],
            window_s: Some(35e-6),
        }
    }
}

/// One workload-count row of Fig. 15.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingGainPoint {
    /// Number of scheduled workloads.
    pub workloads: usize,
    /// Worst-case noise of the best mapping.
    pub best_pct: f64,
    /// Worst-case noise of the worst mapping.
    pub worst_pct: f64,
    /// Cores of the best mapping.
    pub best_cores: Vec<usize>,
    /// Cores of the worst mapping.
    pub worst_cores: Vec<usize>,
}

impl MappingGainPoint {
    /// The noise-reduction opportunity (secondary axis of Fig. 15).
    pub fn gain_pct(&self) -> f64 {
        self.worst_pct - self.best_pct
    }
}

/// Result of the study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingGainResult {
    /// One point per workload count.
    pub points: Vec<MappingGainPoint>,
}

impl MappingGainResult {
    /// Renders the Fig. 15 rows.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Fig. 15: worst-case noise of best vs worst mapping per workload count\n\
             workloads,best_pct,worst_pct,gain_pct,best_cores,worst_cores\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{},{:.1},{:.1},{:.1},{:?},{:?}\n",
                p.workloads,
                p.best_pct,
                p.worst_pct,
                p.gain_pct(),
                p.best_cores,
                p.worst_cores
            ));
        }
        out
    }
}

/// Runs the mapping-gain study.
///
/// # Errors
///
/// Returns [`PdnError`] if a PDN solve fails.
pub fn run_mapping_gain(
    tb: &Testbed,
    cfg: &MappingGainConfig,
) -> Result<MappingGainResult, PdnError> {
    let run_cfg = NoiseRunConfig {
        window_s: cfg.window_s,
        record_traces: false,
        seed: 1,
    };
    let mut points = Vec::new();
    for &k in &cfg.counts {
        let evals = evaluate_all_mappings(
            tb,
            k,
            cfg.stim_freq_hz,
            Some(SyncSpec::paper_default()),
            &run_cfg,
        )?;
        let mapper = NoiseAwareMapper::from_measurements(evals);
        let best = mapper.best_for(k).expect("mappings evaluated").clone();
        let worst = mapper.worst_for(k).expect("mappings evaluated").clone();
        let cores_of = |m: &voltnoise_system::workload::Mapping| -> Vec<usize> {
            m.iter()
                .enumerate()
                .filter(|(_, w)| **w != voltnoise_system::workload::WorkloadKind::Idle)
                .map(|(i, _)| i)
                .collect()
        };
        points.push(MappingGainPoint {
            workloads: k,
            best_pct: best.worst_pct,
            worst_pct: worst.worst_pct,
            best_cores: cores_of(&best.mapping),
            worst_cores: cores_of(&worst.mapping),
        });
    }
    Ok(MappingGainResult { points })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mid_counts_offer_mapping_gain() {
        let tb = Testbed::fast();
        let res = run_mapping_gain(tb, &MappingGainConfig::reduced()).unwrap();
        for p in &res.points {
            assert!(p.worst_pct >= p.best_pct);
            // Paper: 2-4 workloads offer a couple of %p2p points.
            assert!(
                p.gain_pct() > 0.5,
                "k={} gain {:.2}",
                p.workloads,
                p.gain_pct()
            );
            assert_eq!(p.best_cores.len(), p.workloads);
        }
    }

    #[test]
    fn render_includes_counts() {
        let tb = Testbed::fast();
        let res = run_mapping_gain(
            tb,
            &MappingGainConfig {
                counts: vec![2],
                ..MappingGainConfig::reduced()
            },
        )
        .unwrap();
        assert!(res.render().contains("2,"));
    }
}
