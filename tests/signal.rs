//! Integration suite for `voltnoise::pdn::signal`: the streaming
//! spectral + entropy pipeline verified against *analytic* ground
//! truths — Parseval's identity, closed-form sinusoid spectra,
//! white-vs-AR(1) autocorrelation, and the known min-entropy of
//! constructed symbol distributions — plus the golden byte-identity
//! guards that pin the reduced report and the resonance-entropy study.

#[path = "golden/mod.rs"]
mod golden;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use voltnoise::pdn::signal::{
    autocorrelation, entropy_report, fft_in_place, ifft_in_place, markov_min_entropy,
    mcv_min_entropy, welch_psd, WelchConfig, WelchStream,
};

/// Runs `body` for `cases` deterministic seeded cases.
fn check(cases: u64, mut body: impl FnMut(&mut SmallRng)) {
    for case in 0..cases {
        let mut rng = SmallRng::seed_from_u64(0x516_4A1 ^ (case << 8));
        body(&mut rng);
    }
}

fn noise_vec(rng: &mut SmallRng, amp: f64, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(-amp..amp)).collect()
}

/// Forward-then-inverse FFT recovers any random signal, and the
/// transform preserves energy (Parseval: `Σ|x|² = (1/N)·Σ|X|²`) — both
/// to 1e-9 relative.
#[test]
fn fft_round_trip_and_parseval_hold_on_random_signals() {
    check(24, |rng| {
        let n = 1usize << rng.gen_range(4..11);
        let re0 = noise_vec(rng, 2.0, n);
        let im0 = noise_vec(rng, 2.0, n);
        let mut re = re0.clone();
        let mut im = im0.clone();
        fft_in_place(&mut re, &mut im).unwrap();

        let time_energy: f64 = re0.iter().zip(&im0).map(|(a, b)| a * a + b * b).sum();
        let freq_energy: f64 =
            re.iter().zip(&im).map(|(a, b)| a * a + b * b).sum::<f64>() / n as f64;
        assert!(
            (time_energy - freq_energy).abs() <= 1e-9 * time_energy,
            "Parseval violated at n={n}: {time_energy} vs {freq_energy}"
        );

        ifft_in_place(&mut re, &mut im).unwrap();
        let scale = re0.iter().fold(1.0f64, |m, x| m.max(x.abs()));
        for i in 0..n {
            assert!(
                (re[i] - re0[i]).abs() <= 1e-9 * scale && (im[i] - im0[i]).abs() <= 1e-9 * scale,
                "round-trip drift at n={n}, i={i}"
            );
        }
    });
}

/// A sinusoid in white noise: the Welch peak lands within one bin of
/// the true frequency (even off bin centers), and the integrated PSD
/// recovers the total mean power `A²/2 + σ²` of the analytic signal.
#[test]
fn welch_locates_a_sinusoid_to_one_bin_and_conserves_power() {
    check(12, |rng| {
        let fs = 1.0e6;
        let segment = 256usize;
        let cfg = WelchConfig::half_overlap(segment, fs);
        let bin_hz = cfg.bin_hz();
        // A tone well inside the band, deliberately off bin centers.
        let f0 = rng.gen_range(20.0e3..400.0e3) + 0.37 * bin_hz;
        let amp = rng.gen_range(0.5..2.0);
        let noise_amp = 0.02;
        let n = 8192usize;
        let samples: Vec<f64> = (0..n)
            .map(|i| {
                amp * (2.0 * std::f64::consts::PI * f0 * i as f64 / fs).sin()
                    + rng.gen_range(-noise_amp..noise_amp)
            })
            .collect();
        let psd = welch_psd(&samples, cfg).unwrap();

        let (f_peak, _) = psd.peak().expect("tone must produce a peak");
        assert!(
            (f_peak - f0).abs() <= bin_hz,
            "peak at {f_peak:.1} Hz, tone at {f0:.1} Hz, bin {bin_hz:.1} Hz"
        );

        // Parseval for the estimator: total integrated PSD ≈ mean power.
        let truth = amp * amp / 2.0 + noise_amp * noise_amp / 3.0;
        let total = psd.band_power(0.0, fs / 2.0);
        assert!(
            (total - truth).abs() <= 0.05 * truth,
            "integrated PSD {total:.4e} vs analytic power {truth:.4e}"
        );

        // A clean tone is a sharp, resolution-limited resonance.
        let q = psd.q_factor().expect("tone peak has a measurable width");
        assert!(q > 5.0, "q = {q}");
    });
}

/// Autocorrelation separates white noise (no lag-1 memory) from an
/// AR(1) process, whose lag-k autocorrelation is analytically `φᵏ`.
#[test]
fn autocorrelation_tells_white_noise_from_ar1() {
    check(8, |rng| {
        let n = 16384usize;
        let white = noise_vec(rng, 1.0, n);
        let r_white = autocorrelation(&white, 4).unwrap();
        assert_eq!(r_white[0], 1.0);
        assert!(
            r_white[1].abs() < 0.05,
            "white noise lag-1 correlation {}",
            r_white[1]
        );

        let phi = 0.8;
        let mut ar = Vec::with_capacity(n);
        let mut prev = 0.0f64;
        for _ in 0..n {
            prev = phi * prev + rng.gen_range(-1.0..1.0);
            ar.push(prev);
        }
        let r_ar = autocorrelation(&ar, 4).unwrap();
        for (lag, truth) in [(1usize, phi), (2, phi * phi), (3, phi * phi * phi)] {
            assert!(
                (r_ar[lag] - truth).abs() < 0.05,
                "AR(1) lag-{lag} correlation {} vs analytic {truth}",
                r_ar[lag]
            );
        }
    });
}

/// The estimator battery against distributions with known min-entropy:
/// a fair coin carries 1 bit/sample (within 2%), a 75/25 coin exactly
/// `-log2(0.75) ≈ 0.415` bits, a constant source 0 bits, and a uniform
/// 8-symbol source `log2(8) = 3` bits (within 3%, the estimators'
/// confidence bounds are deliberately conservative).
#[test]
fn min_entropy_matches_closed_forms() {
    let mut rng = SmallRng::seed_from_u64(0x90B);
    let n = 1usize << 17;

    let fair: Vec<u8> = (0..n).map(|_| rng.gen_range(0..2u32) as u8).collect();
    let fair_report = entropy_report(&fair).unwrap();
    assert!(
        (fair_report.min_entropy_bits - 1.0).abs() < 0.02,
        "fair coin assessed at {} bits/sample",
        fair_report.min_entropy_bits
    );
    assert!(fair_report.repetition_ok && fair_report.adaptive_ok);

    let biased: Vec<u8> = (0..n)
        .map(|_| u8::from(rng.gen_range(0..4u32) == 0))
        .collect();
    let truth = -(0.75f64).log2();
    let biased_h = mcv_min_entropy(&biased).unwrap();
    assert!(
        (biased_h - truth).abs() < 0.05 * truth,
        "75/25 coin assessed at {biased_h} bits vs analytic {truth}"
    );

    let constant = vec![3u8; n];
    assert_eq!(mcv_min_entropy(&constant).unwrap(), 0.0);
    assert_eq!(markov_min_entropy(&constant).unwrap(), 0.0);

    let uniform: Vec<u8> = (0..n).map(|_| rng.gen_range(0..8u32) as u8).collect();
    let uniform_report = entropy_report(&uniform).unwrap();
    assert_eq!(uniform_report.distinct, 8);
    assert!(
        (uniform_report.min_entropy_bits - 3.0).abs() < 0.03 * 3.0,
        "uniform octal source assessed at {} bits/sample",
        uniform_report.min_entropy_bits
    );
}

/// Streaming and batch Welch agree *bitwise* regardless of how the
/// sample stream is chunked: the fixed-point accumulator makes the
/// merge exact, so `WelchStream` is a drop-in for `welch_psd`.
#[test]
fn streaming_welch_is_bitwise_identical_to_batch() {
    check(10, |rng| {
        let cfg = WelchConfig::half_overlap(128, 2.0e6);
        let n = rng.gen_range(300usize..6000);
        let samples = noise_vec(rng, 1.5, n);
        let batch = welch_psd(&samples, cfg).unwrap();

        let mut stream = WelchStream::new(cfg).unwrap();
        let mut fed = 0usize;
        while fed < n {
            let chunk = rng.gen_range(1usize..700).min(n - fed);
            stream.push(&samples[fed..fed + chunk]);
            fed += chunk;
        }
        // PartialEq covers config, segment count and every fixed-point
        // bin — bit-for-bit.
        assert_eq!(stream.finish(), batch);
    });
}

/// The reduced full report stays byte-identical through the signal
/// refactor (resonance experiments now route through `SignalSummary`).
#[test]
fn full_report_reduced_matches_golden() {
    use voltnoise::analysis::{full_report_on, ReportScale};
    use voltnoise::system::{Engine, Testbed};
    let report = full_report_on(
        Testbed::fast(),
        &Engine::with_workers(2),
        ReportScale::Reduced,
    )
    .unwrap();
    golden::assert_golden("full_report_reduced.txt", &report);
}

/// The rendered resonance-entropy study (reduced scale) is pinned to
/// its own golden file: estimator or solver drift shows up as a
/// reviewable diff, not a silent number change.
#[test]
fn resonance_entropy_reduced_render_matches_golden() {
    use voltnoise::analysis::{run_resonance_entropy, ResonanceEntropyConfig};
    use voltnoise::system::Testbed;
    let study = run_resonance_entropy(Testbed::fast(), &ResonanceEntropyConfig::reduced()).unwrap();
    golden::assert_golden("resonance_entropy_reduced.txt", &study.render());
}
