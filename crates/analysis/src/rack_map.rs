//! Rack-scale noise-aware placement study (the paper's §VII mapping
//! argument run one hierarchy level up).
//!
//! The §VII claim — worst-case noise depends on *which* cores run the
//! work, so noise-aware placement recovers guardband — is reproduced at
//! chip scale by [`crate::mapping_gain`] (Fig. 15) and the scheduler
//! replay. This study runs the same argument on a rack: ≥2 drawers of
//! process-variated chips on a shared supply spine
//! ([`voltnoise_system::RackScenario`]), a synthetic job trace, and two
//! placement policies replayed through the site-indexed discrete-event
//! scheduler. The naive policy packs sites in ordinal order — which
//! clusters work onto one chip (the Fig. 14 failure mode) and lands on
//! whatever silicon comes first; the noise-aware policy consults an
//! engine-backed occupancy noise model, spreading work across the spine
//! and away from the noisy corners of the variated population.
//!
//! Every occupancy the replay visits is a content-keyed
//! [`voltnoise_system::SimJob`] solved through the engine, so the two
//! policies share one cache (candidate scans dedupe against the replay's
//! own trajectory), repeated studies answer from the memo, and a
//! persistent store makes the whole campaign crash-resumable.

use crate::experiment::{Experiment, ExperimentFailure};
use crate::render::Table;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use voltnoise_pdn::topology::VariationSpec;
use voltnoise_pdn::PdnError;
use voltnoise_stressmark::SyncSpec;
use voltnoise_system::engine::Engine;
use voltnoise_system::noise::{CoreLoad, NoiseOutcome, NoiseRunConfig};
use voltnoise_system::rack::RackScenario;
use voltnoise_system::scheduler::{
    replay, synthetic_trace, EngineNoiseModel, NaivePolicy, NoiseAwarePolicy, ScheduleOutcome,
};
use voltnoise_system::testbed::Testbed;

/// Rack mapping-study configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RackMapConfig {
    /// Drawers on the rack's supply spine (the study needs ≥ 2).
    pub drawers: usize,
    /// Chips per drawer (`drawers * chips_per_drawer` ≥ 4 for the
    /// variated-population claim).
    pub chips_per_drawer: usize,
    /// Seed of the per-chip process-variation draw.
    pub variation_seed: u64,
    /// Stressmark stimulus frequency of an occupied site.
    pub stim_freq_hz: f64,
    /// Simulation window per occupancy solve.
    pub window_s: f64,
    /// Jobs in the synthetic trace.
    pub jobs: usize,
    /// Target mean jobs in flight (kept below the site count so the two
    /// policies actually differ — a saturated rack pins both to the
    /// all-sites occupancy).
    pub mean_parallelism: f64,
    /// Multiplicative guardband safety factor (§VII-B convention).
    pub safety_factor: f64,
}

impl RackMapConfig {
    /// Paper-scale: 2 drawers × 2 chips (24 sites), a 60-job trace.
    pub fn paper() -> Self {
        RackMapConfig {
            drawers: 2,
            chips_per_drawer: 2,
            variation_seed: 7,
            stim_freq_hz: 2.5e6,
            window_s: 8e-6,
            jobs: 60,
            mean_parallelism: 8.0,
            safety_factor: 1.1,
        }
    }

    /// Reduced for tests and the bench smoke: same topology (the
    /// ≥2-drawer / ≥4-chip claim must hold even reduced), shorter
    /// window and trace.
    pub fn reduced() -> Self {
        RackMapConfig {
            jobs: 14,
            window_s: 4e-6,
            ..RackMapConfig::paper()
        }
    }
}

/// Result of the rack mapping study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RackMapResult {
    /// Drawers on the spine.
    pub drawers: usize,
    /// Chips per drawer.
    pub chips_per_drawer: usize,
    /// Total sites placed into.
    pub sites: usize,
    /// Nominal supply voltage (guardband conversions).
    pub v_nom: f64,
    /// The naive (ordinal-order) replay.
    pub naive: ScheduleOutcome,
    /// The noise-aware replay.
    pub aware: ScheduleOutcome,
    /// Distinct occupancies solved across both replays (the engine
    /// deduped everything else).
    pub occupancies_evaluated: usize,
    /// Time-weighted guardband recovered in mV (see
    /// [`RackMapResult::guardband_recovered_mv`]); set at assembly with
    /// the config's safety factor applied once.
    pub recovered_mv: f64,
}

impl RackMapResult {
    /// Worst-case improvement: naive peak minus aware peak, %p2p.
    pub fn worst_gain_pct(&self) -> f64 {
        self.naive.peak_required_pct - self.aware.peak_required_pct
    }

    /// Time-weighted guardband recovered by noise-aware placement, in
    /// millivolts: the difference of the two policies' time-weighted
    /// mean required margins, converted at `v_nom` and inflated by the
    /// config's safety factor (§VII-B convention).
    pub fn guardband_recovered_mv(&self) -> f64 {
        self.recovered_mv
    }

    fn assemble_recovery(&mut self, safety_factor: f64) {
        let delta_pct = self.naive.mean_required_pct - self.aware.mean_required_pct;
        self.recovered_mv = delta_pct / 100.0 * self.v_nom * safety_factor * 1e3;
    }

    /// Renders the study's rows.
    pub fn render(&self) -> String {
        let mut t = Table::new(&format!(
            "Rack mapping study: naive vs noise-aware placement over {} drawers x {} chips \
             ({} sites)",
            self.drawers, self.chips_per_drawer, self.sites
        ));
        t.columns([
            "policy",
            "mean_required_pct",
            "peak_required_pct",
            "queued_jobs",
        ]);
        for out in [&self.naive, &self.aware] {
            t.row([
                out.policy.clone(),
                format!("{:.2}", out.mean_required_pct),
                format!("{:.2}", out.peak_required_pct),
                out.queued_jobs.to_string(),
            ]);
        }
        let mut doc = t.finish();
        doc.push_str(&format!(
            "worst_gain_pct,{:.2}\nguardband_recovered_mv,{:.2}\noccupancies_evaluated,{}\n",
            self.worst_gain_pct(),
            self.guardband_recovered_mv(),
            self.occupancies_evaluated
        ));
        doc
    }
}

/// The rack mapping-study experiment (registry id `rack-map`).
#[derive(Debug, Clone)]
pub struct RackMapExperiment {
    /// The study configuration.
    pub cfg: RackMapConfig,
}

impl RackMapExperiment {
    fn campaign(&self, tb: &Testbed, engine: &Engine) -> Result<RackMapResult, PdnError> {
        let cfg = &self.cfg;
        let rack = Arc::new(RackScenario::build(
            tb.chip(),
            cfg.drawers,
            cfg.chips_per_drawer,
            VariationSpec::paper_default(cfg.variation_seed),
        )?);
        let active = CoreLoad::Stressmark(
            tb.max_stressmark(cfg.stim_freq_hz, Some(SyncSpec::paper_default())),
        );
        let run_cfg = NoiseRunConfig {
            window_s: Some(cfg.window_s),
            record_traces: false,
            seed: 1,
            ..NoiseRunConfig::default()
        };
        let mut model = EngineNoiseModel::rack(engine, rack.clone(), active, run_cfg);
        let trace = synthetic_trace(cfg.jobs, cfg.mean_parallelism);
        // One model across both replays: the aware policy's candidate
        // scans and the naive trajectory share the occupancy cache.
        let naive = replay(&mut model, &NaivePolicy, &trace)?;
        let aware = replay(&mut model, &NoiseAwarePolicy, &trace)?;
        let mut result = RackMapResult {
            drawers: cfg.drawers,
            chips_per_drawer: cfg.chips_per_drawer,
            sites: rack.num_sites(),
            v_nom: tb.chip().v_nom(),
            naive,
            aware,
            occupancies_evaluated: model.evaluated(),
            recovered_mv: 0.0,
        };
        result.assemble_recovery(cfg.safety_factor);
        Ok(result)
    }
}

impl Experiment for RackMapExperiment {
    type Artifact = RackMapResult;

    fn id(&self) -> &'static str {
        "rack-map"
    }

    fn title(&self) -> &'static str {
        "Rack study: noise-aware placement over a variated chip population"
    }

    // jobs() stays empty: the replay generates occupancy jobs on the fly.

    fn assemble(
        &self,
        tb: &Testbed,
        _outcomes: &[Arc<NoiseOutcome>],
    ) -> Result<RackMapResult, PdnError> {
        self.campaign(tb, Engine::shared())
    }

    fn render(&self, artifact: &RackMapResult) -> String {
        artifact.render()
    }

    fn run(&self, tb: &Testbed, engine: &Engine) -> Result<RackMapResult, PdnError> {
        self.campaign(tb, engine)
    }

    // The adaptive replay must keep driving the caller's engine (the
    // default settled path would fall back to the shared one).
    fn run_settled(
        &self,
        tb: &Testbed,
        engine: &Engine,
    ) -> Result<RackMapResult, ExperimentFailure> {
        self.campaign(tb, engine).map_err(ExperimentFailure::from)
    }
}

/// Runs the rack mapping study on the shared engine.
///
/// # Errors
///
/// Returns [`PdnError`] if a rack build or PDN solve fails.
pub fn run_rack_map(tb: &Testbed, cfg: &RackMapConfig) -> Result<RackMapResult, PdnError> {
    RackMapExperiment { cfg: cfg.clone() }.run(tb, Engine::shared())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_aware_placement_strictly_beats_naive_on_the_variated_rack() {
        let tb = Testbed::fast();
        let engine = Engine::new();
        let exp = RackMapExperiment {
            cfg: RackMapConfig::reduced(),
        };
        let res = exp.run(tb, &engine).unwrap();
        assert!(res.drawers >= 2, "study must span drawers");
        assert!(
            res.drawers * res.chips_per_drawer >= 4,
            "study must span a chip population"
        );
        assert!(
            res.aware.peak_required_pct < res.naive.peak_required_pct,
            "noise-aware peak {:.3} must be strictly below naive {:.3}",
            res.aware.peak_required_pct,
            res.naive.peak_required_pct
        );
        assert!(
            res.aware.mean_required_pct < res.naive.mean_required_pct,
            "noise-aware mean {:.3} must be below naive {:.3}",
            res.aware.mean_required_pct,
            res.naive.mean_required_pct
        );
        assert!(res.guardband_recovered_mv() > 0.0);
        assert!(res.occupancies_evaluated > 0);
        // The replay's occupancy jobs all dedupe through one engine.
        assert_eq!(engine.stats().solves, res.occupancies_evaluated);
    }

    #[test]
    fn render_reports_both_policies_and_the_recovery() {
        let tb = Testbed::fast();
        let engine = Engine::new();
        let exp = RackMapExperiment {
            cfg: RackMapConfig::reduced(),
        };
        let res = exp.run(tb, &engine).unwrap();
        let doc = res.render();
        assert!(doc.contains("naive"));
        assert!(doc.contains("noise-aware"));
        assert!(doc.contains("worst_gain_pct"));
        assert!(doc.contains("guardband_recovered_mv"));
    }
}
