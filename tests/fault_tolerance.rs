//! Fault-tolerance integration suite: injected faults are captured per
//! job, the retry policy recovers transient failures, divergence guards
//! turn numerical blow-ups into typed errors, and the full report
//! degrades gracefully instead of aborting.

use voltnoise::analysis::{full_report_on, registry, ReportScale};
use voltnoise::pdn::netlist::{Netlist, NodeId};
use voltnoise::pdn::transient::{Drive, Probe, TransientConfig, TransientSolver};
use voltnoise::pdn::PdnError;
use voltnoise::prelude::*;
use voltnoise::system::{FaultInjector, FaultKind, InjectedFault, JobFault, RetryPolicy};

/// Distinct (by seed) max-stressmark jobs on the fast testbed chip.
fn test_jobs(tb: &Testbed, n: u64) -> Vec<SimJob> {
    let batch = SimJob::batch(tb.chip());
    (1..=n)
        .map(|seed| {
            let sm = tb.max_stressmark(2.5e6, None);
            let loads: [CoreLoad; NUM_CORES] =
                std::array::from_fn(|_| CoreLoad::Stressmark(sm.clone()));
            batch.job(
                loads,
                NoiseRunConfig {
                    window_s: Some(20e-6),
                    record_traces: false,
                    seed,
                    ..NoiseRunConfig::default()
                },
            )
        })
        .collect()
}

#[test]
fn injected_solver_error_is_captured_not_fatal() {
    let tb = Testbed::fast();
    let jobs = test_jobs(tb, 2);
    let engine = Engine::with_workers(1)
        .with_injector(FaultInjector::new().fail_solve(0, InjectedFault::SolverError));

    let settled = engine.run_jobs_settled(&jobs);
    assert_eq!(settled.len(), 2);
    match &settled[0] {
        Err(JobFault {
            attempts: 1,
            fault: FaultKind::Solver(PdnError::Injected { ordinal: 0 }),
            ..
        }) => {}
        other => panic!("expected injected fault on job 0, got {other:?}"),
    }
    assert!(settled[1].is_ok(), "job 1 must survive job 0's fault");
    assert_eq!(engine.faults(), 1);

    // The engine stays usable: resubmitting re-solves the failed job
    // (ordinal 2 now, past the injection plan) and hits the cache for
    // the healthy one.
    let resubmitted = engine.run_jobs_settled(&jobs);
    assert!(resubmitted.iter().all(Result::is_ok));
    assert_eq!(engine.faults(), 1, "no new faults on resubmission");
}

#[test]
fn worker_panic_is_captured_and_cache_survives() {
    let tb = Testbed::fast();
    let jobs = test_jobs(tb, 2);
    let engine = Engine::with_workers(1)
        .with_injector(FaultInjector::new().fail_solve(0, InjectedFault::WorkerPanic));

    let settled = engine.run_jobs_settled(&jobs);
    match &settled[0] {
        Err(JobFault {
            fault: FaultKind::Panic(msg),
            ..
        }) => assert!(msg.contains("injected worker panic"), "{msg}"),
        other => panic!("expected captured panic, got {other:?}"),
    }
    assert!(settled[1].is_ok());

    // The fail-fast API still works on the same engine afterwards: the
    // cache was not poisoned by the mid-solve panic.
    let outcomes = engine.run_jobs(&jobs).expect("post-panic run succeeds");
    assert_eq!(outcomes.len(), 2);
}

#[test]
fn nan_outcome_becomes_diverged_and_is_never_cached() {
    let tb = Testbed::fast();
    let jobs = test_jobs(tb, 1);
    let engine = Engine::with_workers(1)
        .with_injector(FaultInjector::new().fail_solve(0, InjectedFault::NanOutcome));

    match &engine.run_jobs_settled(&jobs)[0] {
        Err(JobFault {
            fault: FaultKind::Solver(PdnError::Diverged { node: 0, value, .. }),
            ..
        }) => assert!(value.is_nan(), "corrupted field must be the NaN"),
        other => panic!("expected Diverged from the finite guard, got {other:?}"),
    }
    assert_eq!(engine.solves(), 0, "a corrupted outcome must not count");
    assert_eq!(engine.cache_hits(), 0);

    // Resubmission solves fresh (nothing poisonous was cached).
    let outcome = engine.run_one(&jobs[0]).expect("clean re-solve");
    assert!(outcome.first_non_finite().is_none());
    assert_eq!(engine.solves(), 1);
}

#[test]
fn retry_policy_recovers_transient_fault() {
    let tb = Testbed::fast();
    let jobs = test_jobs(tb, 1);
    let engine = Engine::with_workers(1)
        .with_retry(RetryPolicy::attempts(3))
        .with_injector(FaultInjector::new().fail_solve(0, InjectedFault::SolverError));

    let outcome = engine.run_one(&jobs[0]).expect("second attempt succeeds");
    assert!(outcome.first_non_finite().is_none());
    let stats = engine.stats();
    assert_eq!(stats.retries, 1, "one retry consumed");
    assert_eq!(stats.faults, 0, "recovered jobs are not faults");
    assert_eq!(stats.solves, 1);
}

#[test]
fn reseeding_retry_caches_under_its_own_key() {
    let tb = Testbed::fast();
    let jobs = test_jobs(tb, 1);
    let engine = Engine::with_workers(1)
        .with_retry(RetryPolicy {
            max_attempts: 2,
            reseed: true,
            ..RetryPolicy::default()
        })
        .with_injector(FaultInjector::new().fail_solve(0, InjectedFault::SolverError));

    let outcome = engine
        .run_one_settled(&jobs[0])
        .expect("reseeded retry succeeds");
    assert!(outcome.first_non_finite().is_none());
    assert_eq!(engine.retries(), 1);

    // The success ran under seed+1 and was cached under *that* key, so
    // the original key misses and re-solves (no injection at ordinal 2).
    engine
        .run_one_settled(&jobs[0])
        .expect("original re-solves");
    assert_eq!(engine.cache_hits(), 0);
    assert_eq!(engine.solves(), 2);

    // Now the original key is cached.
    engine.run_one_settled(&jobs[0]).expect("cached");
    assert_eq!(engine.cache_hits(), 1);
}

#[test]
fn fail_fast_run_jobs_surfaces_the_injected_error() {
    let tb = Testbed::fast();
    let jobs = test_jobs(tb, 2);
    let engine = Engine::with_workers(1)
        .with_injector(FaultInjector::new().fail_solve(0, InjectedFault::SolverError));
    let err = engine.run_jobs(&jobs).unwrap_err();
    assert!(matches!(err, PdnError::Injected { ordinal: 0 }), "{err:?}");
}

#[test]
fn settled_parallel_equals_serial_with_retry_active() {
    let tb = Testbed::fast();
    let jobs = test_jobs(tb, 3);
    let policy = RetryPolicy::attempts(3);
    let serial = Engine::with_workers(1)
        .with_retry(policy)
        .run_jobs_settled(&jobs);
    let parallel = Engine::with_workers(4)
        .with_retry(policy)
        .run_jobs_settled(&jobs);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        let s = s.as_ref().expect("serial job succeeds");
        let p = p.as_ref().expect("parallel job succeeds");
        let js = serde_json::to_string(&**s).unwrap();
        let jp = serde_json::to_string(&**p).unwrap();
        assert_eq!(js, jp, "settled outcomes must stay bitwise identical");
    }
}

/// A current step at `t0`: the stimulus that drives the unstable
/// netlist off its (unstable) equilibrium.
struct StepDrive {
    t0: f64,
    amps: f64,
}

impl Drive for StepDrive {
    fn currents(&self, t: f64, out: &mut [f64]) {
        out.fill(if t >= self.t0 { self.amps } else { 0.0 });
    }
    fn edges(&self, t0: f64, t1: f64, out: &mut Vec<f64>) {
        if self.t0 >= t0 && self.t0 < t1 {
            out.push(self.t0);
        }
    }
}

#[test]
fn unstable_netlist_surfaces_diverged_not_nan() {
    let mut nl = Netlist::new();
    let vdd = nl.add_node("vdd");
    nl.add_voltage_source(vdd, NodeId::GROUND, 1.0).unwrap();
    let die = nl.add_node("die");
    nl.add_resistor(vdd, die, 0.1).unwrap();
    nl.add_capacitor(die, NodeId::GROUND, 1e-6).unwrap();
    // Net conductance at the die node is 10 - 20 < 0: a right-half-plane
    // pole that any stimulus blows up.
    nl.add_negative_resistor(die, NodeId::GROUND, -0.05)
        .unwrap();
    nl.add_current_source(die, NodeId::GROUND).unwrap();

    let mut solver = TransientSolver::new(&nl).unwrap();
    let cfg = TransientConfig::new(50e-6);
    let err = solver
        .run(
            &StepDrive {
                t0: 1e-6,
                amps: 1.0,
            },
            &[Probe::NodeVoltage(die)],
            &cfg,
        )
        .unwrap_err();
    match err {
        PdnError::Diverged { t, value, .. } => {
            assert!(t > 0.0 && t <= 50e-6, "t = {t}");
            assert!(
                !value.is_finite() || value.abs() > cfg.divergence_limit,
                "value = {value}"
            );
        }
        other => panic!("expected Diverged, got {other:?}"),
    }
}

#[test]
fn noise_outcomes_are_finite_over_seed_and_frequency_grid() {
    let tb = Testbed::fast();
    let batch = SimJob::batch(tb.chip());
    for &freq in &[45e3, 300e3, 2.5e6] {
        for seed in 1..=3u64 {
            let sm = tb.max_stressmark(freq, None);
            let loads: [CoreLoad; NUM_CORES] =
                std::array::from_fn(|_| CoreLoad::Stressmark(sm.clone()));
            let job = batch.job(
                loads,
                NoiseRunConfig {
                    window_s: Some(20e-6),
                    record_traces: false,
                    seed,
                    ..NoiseRunConfig::default()
                },
            );
            let out = job
                .solve()
                .unwrap_or_else(|e| panic!("{freq:.1e}/{seed}: {e}"));
            assert!(
                out.first_non_finite().is_none(),
                "non-finite outcome at freq {freq:.1e} seed {seed}"
            );
            for core in 0..NUM_CORES {
                assert!(out.pct_p2p[core].is_finite());
                assert!(out.v_min[core].is_finite() && out.v_max[core].is_finite());
                assert!(out.v_min[core] <= out.v_max[core]);
            }
            assert!(out.chip_power.watts().is_finite());
        }
    }
}

/// The headline acceptance scenario: with a fault injector killing one
/// job in each of three experiments, the full report still completes,
/// renders every healthy figure byte-identically to an uninjected run,
/// and lists the three failed experiments in the fault summary.
#[test]
fn degraded_report_renders_healthy_figures_and_fault_summary() {
    let tb = Testbed::fast();

    // Pass 1 (clean): walk the registry on a fresh engine, recording
    // each experiment's solve-ordinal range and rendered text.
    let clean_engine = Engine::new();
    let mut ranges: Vec<(&str, usize, usize)> = Vec::new();
    let mut clean_rendered: Vec<(&str, String)> = Vec::new();
    for entry in registry().iter().filter(|e| e.in_report) {
        let before = clean_engine.solve_attempts();
        let output = entry
            .run_settled(tb, &clean_engine, true)
            .unwrap_or_else(|f| panic!("clean {} failed: {f}", entry.id));
        ranges.push((entry.id, before, clean_engine.solve_attempts()));
        clean_rendered.push((entry.id, output.rendered));
    }
    assert_eq!(clean_engine.faults(), 0);

    // Targets with private (unshared) job sets, all ahead of the
    // adaptive Fig. 12 campaign so later ordinal ranges stay aligned.
    let targets = ["fig7a", "fig8", "fig10"];
    let mut injector = FaultInjector::new();
    for t in targets {
        let &(_, start, end) = ranges
            .iter()
            .find(|(id, _, _)| *id == t)
            .unwrap_or_else(|| panic!("{t} not in registry"));
        assert!(end > start, "{t} consumed no solve ordinals");
        injector = injector.fail_solve(start, InjectedFault::SolverError);
    }

    // Pass 2 (injected): the report must still complete.
    let engine = Engine::new().with_injector(injector);
    let report =
        full_report_on(tb, &engine, ReportScale::Reduced).expect("degraded report completes");
    assert_eq!(engine.faults(), targets.len());

    assert!(
        report.contains("# Fault summary"),
        "fault summary section missing"
    );
    for (id, rendered) in &clean_rendered {
        if targets.contains(id) {
            assert!(
                !report.contains(rendered.as_str()),
                "{id} failed — its figure must be dropped from the report"
            );
            assert!(
                report.contains(&format!("\n{id},1,solver error: injected fault")),
                "{id} missing from the fault summary"
            );
        } else {
            assert!(
                report.contains(rendered.as_str()),
                "healthy figure {id} must render byte-identically"
            );
        }
    }
}
