//! Regenerates paper Fig. 8: an oscilloscope shot of core 0 under the
//! synchronized maximum dI/dt stressmark.
//!
//! A thin wrapper over the experiment registry: the configuration,
//! engine routing and JSON export all live in `voltnoise_bench`.

fn main() {
    voltnoise_bench::run_registry_bin("fig8");
}
