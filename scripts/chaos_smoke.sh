#!/usr/bin/env bash
# Fleet chaos smoke test: run the deterministic campaign once directly
# on an in-process engine (the golden reference) and once through a
# 3-worker supervised fleet under the seeded fault plan (SIGKILL a
# worker mid-batch, stall a shard, reset a connection), then require
# the two outputs to be byte-identical and the killed worker to have
# been respawned.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
cleanup() {
  rm -rf "$workdir"
}
trap cleanup EXIT

jobs=9
seed=7
chaos_seed=42

echo "-- building release voltnoise-fleet + voltnoise-server"
cargo build -q --release --bin voltnoise-fleet --bin voltnoise-server

fleet=target/release/voltnoise-fleet

echo "-- golden: direct single-engine campaign ($jobs jobs)"
"$fleet" golden --reduced --jobs "$jobs" --seed "$seed" >"$workdir/golden.out"

echo "-- chaos: 3-worker fleet under seeded fault plan (chaos seed $chaos_seed)"
VOLTNOISE_SERVER_BIN=target/release/voltnoise-server \
  "$fleet" chaos --reduced --jobs "$jobs" --seed "$seed" \
  --chaos-seed "$chaos_seed" --shards 3 --store-dir "$workdir/stores" \
  >"$workdir/chaos.out" 2>"$workdir/chaos.err"

echo "-- chaos run injected faults and recovered"
grep -q 'kills=' "$workdir/chaos.err" || {
  echo "FAIL: chaos run reported no injection summary" >&2
  cat "$workdir/chaos.err" >&2
  exit 1
}
grep -Eq 'kills=[1-9]' "$workdir/chaos.err" || {
  echo "FAIL: seeded plan never delivered a SIGKILL" >&2
  cat "$workdir/chaos.err" >&2
  exit 1
}
grep -Eq 'respawns=[1-9]' "$workdir/chaos.err" || {
  echo "FAIL: killed worker was never respawned" >&2
  cat "$workdir/chaos.err" >&2
  exit 1
}

echo "-- byte-identity: chaos output vs golden"
if ! diff -u "$workdir/golden.out" "$workdir/chaos.out" >"$workdir/diff.out"; then
  echo "FAIL: chaotic fleet campaign differs from the golden run" >&2
  head -20 "$workdir/diff.out" >&2
  exit 1
fi

lines=$(wc -l <"$workdir/golden.out")
if [[ "$lines" -ne "$jobs" ]]; then
  echo "FAIL: expected $jobs outcome lines, got $lines" >&2
  exit 1
fi

echo "-- shard stores survived the drain"
stores=$(ls "$workdir/stores"/shard*.jsonl 2>/dev/null | wc -l)
if [[ "$stores" -lt 1 ]]; then
  echo "FAIL: fleet drain left no shard stores" >&2
  exit 1
fi

echo "chaos smoke test passed: $jobs jobs byte-identical under induced failure"
