//! Oscilloscope trace capture (paper Fig. 8).

use serde::{Deserialize, Serialize};

/// A captured voltage-vs-time trace.
///
/// # Examples
///
/// ```
/// use voltnoise_measure::scope::ScopeTrace;
///
/// let t = ScopeTrace::new(vec![0.0, 1e-9, 2e-9], vec![1.05, 1.00, 1.05]).unwrap();
/// assert!((t.peak_to_peak() - 0.05).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScopeTrace {
    times: Vec<f64>,
    volts: Vec<f64>,
}

/// Error building or slicing a scope trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError(String);

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid scope trace: {}", self.0)
    }
}

impl std::error::Error for TraceError {}

impl ScopeTrace {
    /// Builds a trace from sample times and voltages.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] when lengths differ, the trace is empty, or
    /// times are not strictly increasing.
    pub fn new(times: Vec<f64>, volts: Vec<f64>) -> Result<Self, TraceError> {
        if times.len() != volts.len() {
            return Err(TraceError("times and volts lengths differ".into()));
        }
        if times.is_empty() {
            return Err(TraceError("empty trace".into()));
        }
        if times.windows(2).any(|w| w[0] >= w[1]) {
            return Err(TraceError("times must be strictly increasing".into()));
        }
        Ok(ScopeTrace { times, volts })
    }

    /// Sample times in seconds.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample voltages in volts.
    pub fn volts(&self) -> &[f64] {
        &self.volts
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when the trace holds no samples (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Minimum voltage.
    pub fn min(&self) -> f64 {
        self.volts.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum voltage.
    pub fn max(&self) -> f64 {
        self.volts.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Peak-to-peak swing.
    pub fn peak_to_peak(&self) -> f64 {
        self.max() - self.min()
    }

    /// Slice of the trace within `[t0, t1)`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] when the window contains no samples.
    pub fn window(&self, t0: f64, t1: f64) -> Result<ScopeTrace, TraceError> {
        let start = self.times.partition_point(|&t| t < t0);
        let end = self.times.partition_point(|&t| t < t1);
        if start >= end {
            return Err(TraceError(format!("no samples in [{t0}, {t1})")));
        }
        Ok(ScopeTrace {
            times: self.times[start..end].to_vec(),
            volts: self.volts[start..end].to_vec(),
        })
    }

    /// Extracts one stimulus period starting at the first trough after
    /// `t_from` — the Fig. 8b "single period" shot.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] when the trace is shorter than a period.
    pub fn single_period(&self, stim_freq_hz: f64, t_from: f64) -> Result<ScopeTrace, TraceError> {
        let period = 1.0 / stim_freq_hz;
        let start_idx = self.times.partition_point(|&t| t < t_from);
        // Find the deepest sample within one period of t_from as anchor.
        let end_search = self.times.partition_point(|&t| t < t_from + period);
        let anchor = (start_idx..end_search)
            .min_by(|&a, &b| self.volts[a].total_cmp(&self.volts[b]))
            .ok_or_else(|| TraceError("window beyond trace".into()))?;
        self.window(self.times[anchor], self.times[anchor] + period)
    }

    /// Estimates the dominant oscillation frequency from mean-crossing
    /// intervals, or `None` when fewer than two crossings exist.
    pub fn dominant_frequency(&self) -> Option<f64> {
        let mean = self.volts.iter().sum::<f64>() / self.volts.len() as f64;
        let mut crossings = Vec::new();
        for i in 1..self.volts.len() {
            if (self.volts[i - 1] - mean) <= 0.0 && (self.volts[i] - mean) > 0.0 {
                crossings.push(self.times[i]);
            }
        }
        if crossings.len() < 2 {
            return None;
        }
        let span = crossings.last().unwrap() - crossings.first().unwrap();
        Some((crossings.len() - 1) as f64 / span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_trace(freq: f64, n: usize, dt: f64) -> ScopeTrace {
        let times: Vec<f64> = (0..n).map(|i| i as f64 * dt).collect();
        let volts: Vec<f64> = times
            .iter()
            .map(|t| 1.05 + 0.05 * (2.0 * std::f64::consts::PI * freq * t).sin())
            .collect();
        ScopeTrace::new(times, volts).unwrap()
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(ScopeTrace::new(vec![0.0], vec![1.0, 2.0]).is_err());
        assert!(ScopeTrace::new(vec![], vec![]).is_err());
        assert!(ScopeTrace::new(vec![0.0, 0.0], vec![1.0, 1.0]).is_err());
    }

    #[test]
    fn p2p_of_sine_is_twice_amplitude() {
        let t = sine_trace(2e6, 4000, 1e-9);
        assert!((t.peak_to_peak() - 0.1).abs() < 1e-3);
    }

    #[test]
    fn window_slices_by_time() {
        let t = sine_trace(2e6, 1000, 1e-9);
        let w = t.window(100e-9, 200e-9).unwrap();
        assert!(w.len() < t.len());
        assert!(w.times().first().unwrap() >= &100e-9);
        assert!(w.times().last().unwrap() < &200e-9);
        assert!(t.window(2.0, 3.0).is_err());
    }

    #[test]
    fn single_period_starts_at_trough() {
        let t = sine_trace(2e6, 4000, 1e-9);
        let p = t.single_period(2e6, 500e-9).unwrap();
        // A full period spans ~500 ns.
        let span = p.times().last().unwrap() - p.times().first().unwrap();
        assert!((span - 500e-9).abs() < 20e-9, "span = {span}");
        // Starts near the minimum voltage.
        assert!((p.volts()[0] - 1.0).abs() < 5e-3);
    }

    #[test]
    fn dominant_frequency_recovers_sine() {
        let t = sine_trace(2e6, 8000, 1e-9);
        let f = t.dominant_frequency().unwrap();
        assert!((f - 2e6).abs() / 2e6 < 0.02, "f = {f}");
    }

    #[test]
    fn dominant_frequency_none_for_flat_trace() {
        let t = ScopeTrace::new(vec![0.0, 1e-9, 2e-9], vec![1.0, 1.0, 1.0]).unwrap();
        assert_eq!(t.dominant_frequency(), None);
    }
}
