//! Vmin experiments (paper Fig. 12): undervolt each stressmark
//! configuration in 0.5 % steps until the R-Unit detects the first
//! failure, and compare available margins.
//!
//! Run with: `cargo run --release --example vmin_margin`

use voltnoise::prelude::*;

fn main() {
    let tb = Testbed::shared();
    println!("== Fig. 12: available margin vs consecutive dI events and stimulus frequency ==");
    let cfg = MarginConfig {
        freqs_hz: vec![35e3, 2.5e6],
        event_counts: vec![Some(1), Some(16), Some(1000), None],
        ..MarginConfig::paper()
    };
    let res = run_margin(tb, &cfg).expect("margin campaign runs");
    print!("{}", res.render());
    println!(
        "mean margin: synchronized {:.2} %, unsynchronized {:.2} % (paper: 0-2 % vs 5-7 %)",
        res.mean_sync_margin(),
        res.mean_unsync_margin()
    );
}
