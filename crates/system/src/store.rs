//! Persistent content-keyed result store: on-disk JSONL backing for the
//! engine's in-memory `JobKey → NoiseOutcome` cache.
//!
//! A long characterization campaign — the paper's stressmark methodology
//! is thousands of transient solves — must survive being killed at hour
//! N. The store makes solved jobs durable facts:
//!
//! - **Format** — line 1 is a versioned header, every further line one
//!   `{"key": "<digest>", "outcome": {...}}` record. The key is a stable
//!   128-bit FNV-1a digest of the full [`crate::engine::JobKey`]
//!   *including the chip signature*, so results from differently
//!   configured chips can share one store without ever colliding.
//! - **Append-on-solve** — each successful solve appends one flushed
//!   line, so a `kill -9` loses at most the line being written.
//! - **Corrupt-line tolerance** — a torn or garbled line (the usual
//!   crash artifact) is skipped and counted, never aborts a load; the
//!   entries around it stay usable.
//! - **Atomic compaction** — [`ResultStore::compact`] rewrites the file
//!   (deduplicated, corrupt lines dropped, deterministic key order) via
//!   a temp file + rename, so a crash mid-compaction leaves the old
//!   file intact.
//!
//! A store whose header does not match the current format/version is
//! *reset* on open: the store is a cache of recomputable results, so
//! discarding unreadable generations is always safe.

use crate::noise::NoiseOutcome;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Magic format name in the header line.
pub const STORE_FORMAT: &str = "voltnoise-store";
/// Current store format version. Bumped whenever the record layout or
/// the key scheme changes incompatibly.
pub const STORE_VERSION: u32 = 1;
/// Identifier of the key scheme: FNV-1a 128 over the canonical byte
/// rendering of a `JobKey` (scenario signature included). `/2` added the
/// solve-spec fields (backend selection plus the optional reduced-order
/// budget) to the rendering. `/3` made the load list variable-length
/// (rack jobs carry one load per site, not a fixed six) and prefixed it
/// with its count to keep the rendering injective.
const KEY_SCHEME: &str = "jobkey-fnv1a128/3";

/// Stable 128-bit FNV-1a hasher. The standard library's `DefaultHasher`
/// is explicitly not stable across Rust releases, so store keys — which
/// must stay valid across processes, machines and toolchains — use this
/// fixed, documented function instead.
#[derive(Debug, Clone)]
pub(crate) struct Fnv128 {
    state: u128,
}

impl Fnv128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

    pub(crate) fn new() -> Fnv128 {
        Fnv128 {
            state: Fnv128::OFFSET,
        }
    }

    pub(crate) fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(Fnv128::PRIME);
        }
    }

    pub(crate) fn finish_hex(&self) -> String {
        format!("{:032x}", self.state)
    }
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct StoreHeader {
    format: String,
    version: u32,
    key_scheme: String,
}

impl StoreHeader {
    fn current() -> StoreHeader {
        StoreHeader {
            format: STORE_FORMAT.to_string(),
            version: STORE_VERSION,
            key_scheme: KEY_SCHEME.to_string(),
        }
    }
}

#[derive(Serialize, Deserialize)]
struct StoreRecord {
    key: String,
    outcome: NoiseOutcome,
}

#[derive(Debug)]
struct StoreInner {
    entries: HashMap<String, Arc<NoiseOutcome>>,
    corrupt_lines: usize,
    /// Set once when an append fails, so a full disk warns once instead
    /// of spamming stderr for every remaining solve.
    append_warned: bool,
    /// Byte offset up to which the backing file has been scanned into
    /// `entries` — always a line boundary. [`ResultStore::get_fresh`]
    /// resumes scanning here, so a read-through shard sees another
    /// process's appends without re-reading the whole file.
    scanned: u64,
}

/// Parses newline-terminated record lines from `data`, inserting new
/// keys into `entries`. Returns `(bytes_consumed, corrupt_lines)`;
/// `bytes_consumed` stops after the last complete line, so a torn tail
/// (a crash artifact or an append still in flight) is left for a later
/// scan instead of being half-parsed.
fn scan_records(data: &[u8], entries: &mut HashMap<String, Arc<NoiseOutcome>>) -> (usize, usize) {
    let mut consumed = 0usize;
    let mut corrupt = 0usize;
    let mut rest = data;
    while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
        let line = &rest[..pos];
        consumed += pos + 1;
        rest = &rest[pos + 1..];
        match std::str::from_utf8(line) {
            Ok(line) => {
                let line = line.trim_end_matches('\r');
                if line.trim().is_empty() {
                    continue;
                }
                match serde_json::from_str::<StoreRecord>(line) {
                    Ok(rec) => {
                        entries
                            .entry(rec.key)
                            .or_insert_with(|| Arc::new(rec.outcome));
                    }
                    Err(_) => corrupt += 1,
                }
            }
            Err(_) => corrupt += 1,
        }
    }
    (consumed, corrupt)
}

/// The on-disk JSONL store. Thread-safe: the engine's workers append
/// concurrently through one mutex.
pub struct ResultStore {
    path: PathBuf,
    inner: Mutex<StoreInner>,
}

impl std::fmt::Debug for ResultStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("ResultStore")
            .field("path", &self.path)
            .field("entries", &inner.entries.len())
            .field("corrupt_lines", &inner.corrupt_lines)
            .finish()
    }
}

impl ResultStore {
    /// Opens (or creates) a store at `path`, loading every readable
    /// record. Corrupt lines are skipped and counted; a missing,
    /// empty, or version-mismatched file starts the store fresh (the
    /// mismatched file is atomically rewritten with the current header).
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the file exists but cannot be read, or
    /// when a fresh store file cannot be created.
    pub fn open<P: AsRef<Path>>(path: P) -> std::io::Result<ResultStore> {
        let path = path.as_ref().to_path_buf();
        let mut entries: HashMap<String, Arc<NoiseOutcome>> = HashMap::new();
        let mut corrupt_lines = 0usize;
        let mut header_ok = false;
        let mut scanned = 0u64;
        match std::fs::read(&path) {
            Ok(data) => {
                if data.is_empty() {
                    header_ok = true; // empty file: adopt it
                } else if let Some(pos) = data.iter().position(|&b| b == b'\n') {
                    // A non-UTF-8 first line is as alien as a wrong
                    // header: reset below.
                    if std::str::from_utf8(&data[..pos])
                        .ok()
                        .and_then(|l| serde_json::from_str::<StoreHeader>(l).ok())
                        .is_some_and(|h| h == StoreHeader::current())
                    {
                        header_ok = true;
                        let body = &data[pos + 1..];
                        let (consumed, corrupt) = scan_records(body, &mut entries);
                        corrupt_lines = corrupt;
                        scanned = (pos + 1 + consumed) as u64;
                        // A tail without a newline: a torn append. A
                        // parseable one is adopted (writer died between
                        // the record and its newline); anything else
                        // counts as corrupt and stays unconsumed so a
                        // later scan can pick it up if it completes.
                        let tail = &body[consumed..];
                        if !tail.is_empty() {
                            match std::str::from_utf8(tail)
                                .ok()
                                .and_then(|l| serde_json::from_str::<StoreRecord>(l).ok())
                            {
                                Some(rec) => {
                                    entries
                                        .entry(rec.key)
                                        .or_insert_with(|| Arc::new(rec.outcome));
                                    scanned += tail.len() as u64;
                                }
                                None => corrupt_lines += 1,
                            }
                        }
                    }
                    // Alien or future-version header: the whole file is
                    // unreadable to this code. Reset below.
                }
                // A nonempty file without any newline cannot hold a
                // valid header: reset below.
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let store = ResultStore {
            path,
            inner: Mutex::new(StoreInner {
                entries,
                corrupt_lines,
                append_warned: false,
                scanned,
            }),
        };
        let fresh = {
            let inner = store.lock();
            inner.entries.is_empty() && inner.corrupt_lines == 0
        };
        // A fresh store is written out so line 1 is always the header; an
        // unrecognized generation is reset — results are recomputable.
        if !header_ok || fresh {
            store.rewrite()?;
        }
        Ok(store)
    }

    fn lock(&self) -> MutexGuard<'_, StoreInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The store's backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of loaded (plus appended) records.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Corrupt lines skipped when the store was opened (compaction
    /// resets this to zero).
    pub fn corrupt_lines(&self) -> usize {
        self.lock().corrupt_lines
    }

    /// Looks up a stored outcome by its stable key digest.
    pub fn get(&self, key: &str) -> Option<Arc<NoiseOutcome>> {
        self.lock().entries.get(key).cloned()
    }

    /// Like [`ResultStore::get`], but on a miss first re-scans any
    /// bytes another process appended to the backing file since the
    /// last scan. This is the read-through primitive of a sharded
    /// fleet: a fallback worker answering for a crashed or stalled
    /// primary sees every record the primary flushed before dying,
    /// which is what keeps failover duplicate-free.
    ///
    /// Only complete (newline-terminated) lines are consumed; a torn
    /// tail — an append caught in flight — is left for the next scan.
    /// Hits never touch the disk.
    pub fn get_fresh(&self, key: &str) -> Option<Arc<NoiseOutcome>> {
        let mut inner = self.lock();
        if let Some(hit) = inner.entries.get(key) {
            return Some(hit.clone());
        }
        self.refresh_locked(&mut inner);
        inner.entries.get(key).cloned()
    }

    /// Scans records appended to the backing file since the last scan
    /// into memory; returns how many new bytes were consumed. I/O
    /// failures are treated as "nothing new" — the store degrades to
    /// its in-memory view, it never aborts a lookup.
    pub fn refresh(&self) -> u64 {
        let mut inner = self.lock();
        self.refresh_locked(&mut inner)
    }

    fn refresh_locked(&self, inner: &mut StoreInner) -> u64 {
        let Ok(mut file) = File::open(&self.path) else {
            return 0;
        };
        let len = match file.metadata() {
            Ok(meta) => meta.len(),
            Err(_) => return 0,
        };
        if len <= inner.scanned || file.seek(SeekFrom::Start(inner.scanned)).is_err() {
            return 0;
        }
        let mut data = Vec::new();
        if file
            .take(len - inner.scanned)
            .read_to_end(&mut data)
            .is_err()
        {
            return 0;
        }
        let (consumed, corrupt) = scan_records(&data, &mut inner.entries);
        inner.scanned += consumed as u64;
        inner.corrupt_lines += corrupt;
        consumed as u64
    }

    /// Records one solved outcome: inserts it in memory and appends a
    /// flushed JSONL line. A key already present is skipped (results
    /// are content-keyed, so the stored outcome is identical). Append
    /// I/O failures are reported on stderr once but never abort — a
    /// full disk degrades durability, not the campaign.
    pub fn append(&self, key: &str, outcome: &NoiseOutcome) {
        let mut inner = self.lock();
        if inner.entries.contains_key(key) {
            return;
        }
        inner
            .entries
            .insert(key.to_string(), Arc::new(outcome.clone()));
        let record = StoreRecord {
            key: key.to_string(),
            outcome: outcome.clone(),
        };
        let appended = serde_json::to_string(&record)
            .map_err(std::io::Error::other)
            .and_then(|line| {
                let mut file = OpenOptions::new()
                    .append(true)
                    .create(true)
                    .open(&self.path)?;
                writeln!(file, "{line}")?;
                file.flush()
            });
        if let Err(why) = appended {
            if !inner.append_warned {
                inner.append_warned = true;
                eprintln!(
                    "voltnoise: result store {} stopped persisting ({why}); \
                     continuing in memory only",
                    self.path.display()
                );
            }
        }
    }

    /// Rewrites the backing file from the in-memory entries: header
    /// first, then one record per distinct key in sorted (deterministic)
    /// order. Corrupt and duplicate lines do not survive. Atomic: the
    /// new content is written to a sibling temp file and renamed over
    /// the store, so a crash mid-compaction cannot lose the old file.
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the temp file cannot be written or
    /// renamed; the original file is left untouched in that case.
    pub fn compact(&self) -> std::io::Result<()> {
        self.rewrite()
    }

    fn rewrite(&self) -> std::io::Result<()> {
        let mut inner = self.lock();
        let tmp = self.path.with_extension("tmp");
        let written;
        {
            let mut file = File::create(&tmp)?;
            let header =
                serde_json::to_string(&StoreHeader::current()).map_err(std::io::Error::other)?;
            writeln!(file, "{header}")?;
            let mut keys: Vec<&String> = inner.entries.keys().collect();
            keys.sort();
            for key in keys {
                let record = StoreRecord {
                    key: key.clone(),
                    outcome: NoiseOutcome::clone(&inner.entries[key]),
                };
                let line = serde_json::to_string(&record).map_err(std::io::Error::other)?;
                writeln!(file, "{line}")?;
            }
            file.sync_all()?;
            written = file.metadata()?.len();
        }
        std::fs::rename(&tmp, &self.path)?;
        inner.corrupt_lines = 0;
        inner.scanned = written;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltnoise_measure::power::PowerMeter;
    use voltnoise_measure::skitter::SkitterReading;
    use voltnoise_pdn::topology::NUM_CORES;

    fn outcome(tag: f64) -> NoiseOutcome {
        NoiseOutcome {
            readings: [SkitterReading {
                min_tap: 10,
                max_tap: 20,
                taps: 129,
                samples: 100,
            }; NUM_CORES]
                .into(),
            pct_p2p: [tag; NUM_CORES].into(),
            v_min: [1.0 - tag / 100.0; NUM_CORES].into(),
            v_max: [1.0 + tag / 100.0; NUM_CORES].into(),
            chip_power: PowerMeter::new().read(1.05, 40.0),
            traces: None,
            steps: 1234,
        }
    }

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "voltnoise_store_{}_{name}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn round_trips_records_across_reopen() {
        let path = tmp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let store = ResultStore::open(&path).unwrap();
            assert!(store.is_empty());
            store.append("aaaa", &outcome(5.0));
            store.append("bbbb", &outcome(7.5));
            // Duplicate key appends only once.
            store.append("aaaa", &outcome(5.0));
            assert_eq!(store.len(), 2);
        }
        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.corrupt_lines(), 0);
        let got = store.get("bbbb").unwrap();
        assert_eq!(
            serde_json::to_string(&*got).unwrap(),
            serde_json::to_string(&outcome(7.5)).unwrap()
        );
        assert!(store.get("cccc").is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_lines_are_skipped_and_counted() {
        let path = tmp_path("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let store = ResultStore::open(&path).unwrap();
            store.append("good1", &outcome(1.0));
            store.append("good2", &outcome(2.0));
        }
        // Simulate a crash artifact: a torn line and binary garbage.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            writeln!(f, "{{\"key\":\"torn\",\"outcome\":{{\"reading").unwrap();
            writeln!(f, "\u{7f}\u{0}garbage").unwrap();
        }
        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.corrupt_lines(), 2);
        assert!(store.get("good1").is_some());
        // Compaction drops the corrupt lines for good.
        store.compact().unwrap();
        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.corrupt_lines(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn alien_header_resets_the_store() {
        let path = tmp_path("alien");
        std::fs::write(&path, "this is not a voltnoise store\nat all\n").unwrap();
        let store = ResultStore::open(&path).unwrap();
        assert!(store.is_empty());
        store.append("k", &outcome(3.0));
        drop(store);
        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn future_version_resets_instead_of_guessing() {
        let path = tmp_path("future");
        std::fs::write(
            &path,
            format!(
                "{{\"format\":\"{STORE_FORMAT}\",\"version\":{},\
                 \"key_scheme\":\"jobkey-fnv1a128/9\"}}\n\
                 {{\"key\":\"x\",\"outcome\":\"opaque-v9-payload\"}}\n",
                STORE_VERSION + 8
            ),
        )
        .unwrap();
        let store = ResultStore::open(&path).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.corrupt_lines(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_is_deterministic_and_sorted() {
        let path = tmp_path("compact");
        let _ = std::fs::remove_file(&path);
        let store = ResultStore::open(&path).unwrap();
        store.append("zz", &outcome(1.0));
        store.append("aa", &outcome(2.0));
        store.compact().unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        store.compact().unwrap();
        let second = std::fs::read_to_string(&path).unwrap();
        assert_eq!(first, second);
        let lines: Vec<&str> = first.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("\"aa\""), "sorted order: {}", lines[1]);
        assert!(lines[2].contains("\"zz\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn get_fresh_sees_another_handles_appends() {
        let path = tmp_path("fresh");
        let _ = std::fs::remove_file(&path);
        let writer = ResultStore::open(&path).unwrap();
        // A second handle on the same file — the shape of a fleet
        // worker reading through a sibling's shard.
        let reader = ResultStore::open(&path).unwrap();
        assert!(reader.get_fresh("late").is_none());
        writer.append("late", &outcome(9.0));
        // Plain get still serves the stale in-memory view; get_fresh
        // tail-scans the file and finds the new record.
        assert!(reader.get("late").is_none());
        let got = reader.get_fresh("late").unwrap();
        assert_eq!(
            serde_json::to_string(&*got).unwrap(),
            serde_json::to_string(&outcome(9.0)).unwrap()
        );
        // Idempotent: a second lookup is a pure memory hit.
        assert!(reader.get("late").is_some());
        // A torn (newline-less) tail is not consumed until it completes.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"key\":\"half").unwrap();
        }
        assert!(reader.get_fresh("half").is_none());
        assert_eq!(reader.corrupt_lines(), 0, "in-flight tail is not corrupt");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fnv128_is_stable_and_sensitive() {
        let mut h = Fnv128::new();
        h.update(b"voltnoise");
        // Fixed digest: this value is part of the on-disk contract. If
        // it changes, the key scheme version must be bumped.
        assert_eq!(h.finish_hex(), "69f5776130067a9b37288bf33cabec94");
        let mut h2 = Fnv128::new();
        h2.update(b"voltnoisf");
        assert_ne!(h.finish_hex(), h2.finish_hex());
    }
}
