//! Energy-per-instruction (EPI) profiling.
//!
//! Reproduces the paper's §IV-A flow: one micro-benchmark per ISA
//! instruction (4000 dependency-free repetitions), measure power and IPC,
//! rank all 1301 instructions by loop power. Table I of the paper shows
//! the first and last five entries of this ranking.

use crate::isa::{Isa, Opcode};
use crate::kernel::{Kernel, RunMetrics, EPI_REPETITIONS};
use crate::pipeline::CoreConfig;
use serde::{Deserialize, Serialize};

/// One instruction's profile entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpiEntry {
    /// Profiled instruction.
    pub opcode: Opcode,
    /// Its mnemonic.
    pub mnemonic: String,
    /// Its description.
    pub description: String,
    /// Measured loop power in watts.
    pub power_w: f64,
    /// Power normalized to the lowest-power instruction (Table I style,
    /// where SRNM = 1.0).
    pub rel_power: f64,
    /// Measured micro-ops per cycle.
    pub ipc: f64,
}

/// The full EPI ranking, ordered from highest to lowest loop power.
///
/// # Examples
///
/// ```
/// use voltnoise_uarch::epi::EpiProfile;
/// use voltnoise_uarch::isa::Isa;
/// use voltnoise_uarch::pipeline::CoreConfig;
///
/// let isa = Isa::zlike();
/// let profile = EpiProfile::generate(&isa, &CoreConfig::default());
/// assert_eq!(profile.len(), isa.len());
/// // The ranking is monotonically non-increasing in power.
/// let e = profile.entries();
/// assert!(e.windows(2).all(|w| w[0].power_w >= w[1].power_w));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpiProfile {
    entries: Vec<EpiEntry>,
}

impl EpiProfile {
    /// Profiles every instruction of the ISA.
    ///
    /// Serializing instructions are profiled with fewer repetitions (their
    /// loops run hundreds of times slower), which does not change their
    /// steady-state power.
    pub fn generate(isa: &Isa, cfg: &CoreConfig) -> Self {
        let mut entries: Vec<EpiEntry> = isa
            .iter()
            .map(|(op, def)| {
                let reps = if def.serializing || def.occupancy > 8 {
                    EPI_REPETITIONS / 10
                } else {
                    EPI_REPETITIONS
                };
                let m: RunMetrics = Kernel::single_instruction(isa, op, reps).run(isa, cfg);
                EpiEntry {
                    opcode: op,
                    mnemonic: def.mnemonic.clone(),
                    description: def.description.clone(),
                    power_w: m.avg_power_w,
                    rel_power: 0.0,
                    ipc: m.ipc,
                }
            })
            .collect();
        entries.sort_by(|a, b| {
            b.power_w
                .total_cmp(&a.power_w)
                .then_with(|| a.mnemonic.cmp(&b.mnemonic))
        });
        let floor = entries.last().map(|e| e.power_w).unwrap_or(1.0);
        for e in &mut entries {
            e.rel_power = e.power_w / floor;
        }
        EpiProfile { entries }
    }

    /// All entries, highest power first.
    pub fn entries(&self) -> &[EpiEntry] {
        &self.entries
    }

    /// Number of profiled instructions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `n` highest-power entries.
    pub fn top(&self, n: usize) -> &[EpiEntry] {
        &self.entries[..n.min(self.entries.len())]
    }

    /// The `n` lowest-power entries, lowest last (Table I order).
    pub fn bottom(&self, n: usize) -> &[EpiEntry] {
        let n = n.min(self.entries.len());
        &self.entries[self.entries.len() - n..]
    }

    /// 1-based rank of an opcode (1 = highest power), or `None` if absent.
    pub fn rank_of(&self, op: Opcode) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.opcode == op)
            .map(|i| i + 1)
    }

    /// The lowest-power instruction — the paper's choice for the minimum
    /// power sequence ("we select the last instruction of the instruction
    /// rank", §IV-B).
    pub fn min_power_opcode(&self) -> Opcode {
        self.entries.last().expect("non-empty profile").opcode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn profile() -> &'static (Isa, EpiProfile) {
        static CELL: OnceLock<(Isa, EpiProfile)> = OnceLock::new();
        CELL.get_or_init(|| {
            let isa = Isa::zlike();
            let p = EpiProfile::generate(&isa, &CoreConfig::default());
            (isa, p)
        })
    }

    #[test]
    fn profile_covers_whole_isa() {
        let (isa, p) = profile();
        assert_eq!(p.len(), isa.len());
    }

    #[test]
    fn top_five_matches_table1() {
        let (_, p) = profile();
        let top: Vec<&str> = p.top(5).iter().map(|e| e.mnemonic.as_str()).collect();
        assert_eq!(top, vec!["CIB", "CRB", "BXHG", "CGIB", "CHHSI"]);
    }

    #[test]
    fn bottom_five_matches_table1() {
        let (_, p) = profile();
        let bottom: Vec<&str> = p.bottom(5).iter().map(|e| e.mnemonic.as_str()).collect();
        assert_eq!(bottom, vec!["DDTRA", "MXTRA", "MDTRA", "STCK", "SRNM"]);
    }

    #[test]
    fn relative_power_range_matches_table1_scale() {
        // Table I: top ~1.58x, bottom = 1.0x (normalized to SRNM).
        let (_, p) = profile();
        let max_rel = p.top(1)[0].rel_power;
        assert!(
            (1.4..1.85).contains(&max_rel),
            "max relative power {max_rel}, expected ~1.58"
        );
        assert!((p.bottom(1)[0].rel_power - 1.0).abs() < 1e-9);
    }

    #[test]
    fn compare_immediate_in_top_five_is_the_nonintuitive_case() {
        // Paper: "the non-intuitive case where a compare immediate
        // instruction (CHHSI) is in the Top 5".
        let (isa, p) = profile();
        let rank = p.rank_of(isa.opcode("CHHSI").unwrap()).unwrap();
        assert!(rank <= 5, "CHHSI rank = {rank}");
    }

    #[test]
    fn min_power_opcode_is_serializing_not_cheap_fxu() {
        let (isa, p) = profile();
        let def = isa.def(p.min_power_opcode());
        assert!(def.serializing, "minimum power should be a serializing op");
    }

    #[test]
    fn ranks_are_consistent_with_order() {
        let (_, p) = profile();
        let first = p.entries()[0].opcode;
        let last = p.entries().last().unwrap().opcode;
        assert_eq!(p.rank_of(first), Some(1));
        assert_eq!(p.rank_of(last), Some(p.len()));
    }
}
