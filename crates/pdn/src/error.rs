//! Error type for PDN construction and analysis.

use std::error::Error;
use std::fmt;

/// Errors produced by netlist construction and the MNA solvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PdnError {
    /// A matrix operation received incompatible dimensions.
    DimensionMismatch {
        /// Dimension the operation required.
        expected: usize,
        /// Dimension it received.
        actual: usize,
    },
    /// LU factorization hit a zero pivot; the circuit is under-determined
    /// (e.g. a node with no DC path to ground).
    SingularMatrix {
        /// Column at which elimination failed.
        column: usize,
    },
    /// A circuit element was given a non-positive or non-finite value.
    InvalidElement {
        /// Element description, e.g. `"capacitor C_die"`.
        element: String,
        /// The offending value.
        value: f64,
    },
    /// A node id referenced a node that does not exist in the netlist.
    UnknownNode {
        /// The out-of-range node index.
        node: usize,
    },
    /// Transient analysis was configured with an invalid time range or step.
    InvalidTimebase {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A solve produced a non-finite or runaway value and was aborted
    /// before the bad number could contaminate downstream statistics.
    Diverged {
        /// Simulation time (seconds) at which divergence was detected;
        /// `0.0` when the DC operating point itself diverged.
        t: f64,
        /// Index of the diverging unknown: the MNA unknown index inside
        /// the transient solver, or the core index (with `NUM_CORES`
        /// standing for the chip power rail) in outcome-level guards.
        node: usize,
        /// The offending value (may be NaN or infinite).
        value: f64,
    },
    /// A fault deliberately injected by a fault-injection harness (see
    /// `voltnoise_system::fault::FaultInjector`). Never produced by a
    /// real solve.
    Injected {
        /// Ordinal of the solve attempt the injector failed.
        ordinal: usize,
    },
    /// The solve's step budget ([`crate::transient::TransientConfig::max_steps`])
    /// was exhausted before reaching `t_end`. Deterministic — unlike a
    /// wall-clock timeout, the same netlist and budget always fail at
    /// the same step — so budget faults are reproducible and cacheable
    /// campaign facts, not scheduling accidents.
    BudgetExceeded {
        /// Accepted integration steps taken when the budget ran out.
        steps: usize,
        /// Simulation time (seconds) reached within the budget.
        t: f64,
    },
    /// The solve was cancelled cooperatively via a
    /// [`crate::cancel::CancelToken`] between accepted steps.
    Cancelled {
        /// Simulation time (seconds) at which cancellation was observed.
        t: f64,
    },
    /// The solve was reaped because its request's wall-clock deadline
    /// expired ([`crate::cancel::CancelToken::cancel_deadline`]).
    /// Distinct from [`PdnError::Cancelled`] so serving layers can count
    /// deadline faults separately from operator-initiated drains, and
    /// from [`PdnError::BudgetExceeded`] because a wall-clock deadline —
    /// unlike a step budget — is a scheduling fact, not a content fact,
    /// so it must never be cached.
    DeadlineExceeded {
        /// Simulation time (seconds) reached when the deadline fired.
        t: f64,
    },
    /// Peak detection was asked to analyze an empty impedance profile.
    EmptyProfile,
    /// A signal-analysis routine ([`crate::signal`]) was given input it
    /// cannot process: a non-power-of-two FFT length, an overlap at
    /// least as long as the segment, mismatched Welch configurations in
    /// a merge, a zero-variance sequence, and so on.
    Signal {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A reduced-order model could not meet its caller-supplied error
    /// budget even at the maximum permitted order. The caller should
    /// fall back to the full-order solver (or raise the budget).
    RomBudget {
        /// Worst-case voltage-error budget the caller configured.
        budget_v: f64,
        /// Smallest worst-case calibration error any candidate order
        /// achieved.
        achieved_v: f64,
        /// Largest reduced order tried.
        states: usize,
    },
}

impl fmt::Display for PdnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdnError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            PdnError::SingularMatrix { column } => {
                write!(
                    f,
                    "singular matrix at column {column}; circuit may lack a path to ground"
                )
            }
            PdnError::InvalidElement { element, value } => {
                write!(f, "invalid value {value} for element {element}")
            }
            PdnError::UnknownNode { node } => write!(f, "unknown node index {node}"),
            PdnError::InvalidTimebase { reason } => write!(f, "invalid timebase: {reason}"),
            PdnError::Diverged { t, node, value } => write!(
                f,
                "solve diverged at t = {t:.3e} s: unknown {node} reached {value}"
            ),
            PdnError::Injected { ordinal } => {
                write!(f, "injected fault at solve attempt {ordinal}")
            }
            PdnError::BudgetExceeded { steps, t } => write!(
                f,
                "step budget exhausted after {steps} accepted steps at t = {t:.3e} s"
            ),
            PdnError::Cancelled { t } => write!(f, "solve cancelled at t = {t:.3e} s"),
            PdnError::DeadlineExceeded { t } => write!(
                f,
                "wall-clock deadline expired; solve reaped at t = {t:.3e} s"
            ),
            PdnError::EmptyProfile => {
                write!(f, "empty impedance profile has no peaks")
            }
            PdnError::Signal { reason } => write!(f, "signal analysis error: {reason}"),
            PdnError::RomBudget {
                budget_v,
                achieved_v,
                states,
            } => write!(
                f,
                "reduced-order model missed its error budget: best {achieved_v:.3e} V \
                 against budget {budget_v:.3e} V at {states} states"
            ),
        }
    }
}

impl Error for PdnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = [
            PdnError::DimensionMismatch {
                expected: 2,
                actual: 3,
            },
            PdnError::SingularMatrix { column: 1 },
            PdnError::InvalidElement {
                element: "capacitor".into(),
                value: -1.0,
            },
            PdnError::UnknownNode { node: 9 },
            PdnError::InvalidTimebase {
                reason: "t_end before t_start".into(),
            },
            PdnError::Diverged {
                t: 1e-6,
                node: 3,
                value: f64::INFINITY,
            },
            PdnError::Injected { ordinal: 7 },
            PdnError::BudgetExceeded {
                steps: 400,
                t: 2e-6,
            },
            PdnError::Cancelled { t: 1e-6 },
            PdnError::DeadlineExceeded { t: 3e-6 },
            PdnError::EmptyProfile,
            PdnError::Signal {
                reason: "segment length 6 is not a power of two".into(),
            },
            PdnError::RomBudget {
                budget_v: 1e-3,
                achieved_v: 4e-3,
                states: 16,
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_trait_object_compatible() {
        fn takes_err(_: &dyn Error) {}
        takes_err(&PdnError::UnknownNode { node: 0 });
    }
}
