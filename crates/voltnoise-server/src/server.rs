//! The daemon itself: a bounded-thread-pool TCP accept loop, the HTTP
//! routes, and the admission → deadline → solve → stream pipeline of a
//! batch request. See `DESIGN.md` ("Service model") for the state
//! machine this file implements.

use crate::admission::AdmissionControl;
use crate::deadline::DeadlineReaper;
use crate::http::{
    finish_chunked, read_request, start_chunked, write_chunk, write_response, Request,
};
use crate::signals;
use crate::wire::{parse_batch, BatchRequest, SignalStats};
use serde::{Deserialize, Serialize, Value};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};
use voltnoise_pdn::topology::VariationSpec;
use voltnoise_pdn::CancelToken;
use voltnoise_stressmark::SyncSpec;
use voltnoise_system::engine::{Engine, SimJob};
use voltnoise_system::fault::{FaultKind, JobFault};
use voltnoise_system::noise::{CoreLoad, DrawerStepConfig, NoiseOutcome, NoiseRunConfig};
use voltnoise_system::rack::RackScenario;
use voltnoise_system::site::SiteVec;
use voltnoise_system::testbed::Testbed;
use voltnoise_system::DrawerJob;

/// Server configuration. Every knob has a production-shaped default;
/// the tests and the smoke script turn them down to provoke the
/// degraded paths deterministically.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port; the chosen
    /// address is printed on stdout for discovery).
    pub addr: String,
    /// Connection-handler threads.
    pub workers: usize,
    /// Bounded pending-connection queue; connections beyond it are shed
    /// with `503`.
    pub queue_cap: usize,
    /// Admission ceiling, estimated in-flight steps.
    pub step_ceiling: u64,
    /// Largest accepted request body, bytes.
    pub max_body: usize,
    /// Batch deadline when the request names none, milliseconds.
    pub default_deadline_ms: u64,
    /// Use the reduced-search testbed ([`Testbed::fast`]) instead of
    /// the full one — the tests' and smoke script's fast path.
    pub reduced: bool,
    /// Primary result-store path for this worker's shard (overrides
    /// `VOLTNOISE_STORE`); `None` keeps the env-driven behavior.
    pub store: Option<String>,
    /// Read-through stores: sibling shards' JSONL files, consulted on a
    /// primary miss and re-scanned incrementally — how a failover
    /// worker sees a crashed sibling's flushed results without ever
    /// writing to them.
    pub read_stores: Vec<String>,
    /// This worker's position on the fleet's consistent-hash ring
    /// (surfaced in `/stats` as a gauge).
    pub shard_id: usize,
    /// Supervisor-side restart count for this shard: 0 on first spawn,
    /// incremented on every respawn. Lets `/stats` distinguish a fresh
    /// process from a crash survivor whose counters reset.
    pub restart_gen: usize,
    /// How long a drain lets in-flight batches keep running before
    /// their cancel tokens fire, milliseconds.
    pub drain_grace_ms: u64,
    /// Requests served per keep-alive connection before the server
    /// closes it (bounds one peer's hold on a worker thread).
    pub keep_alive_requests: usize,
    /// Idle wait for the *next* request on a keep-alive connection
    /// before the server closes it, milliseconds.
    pub keep_alive_idle_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_cap: 64,
            step_ceiling: 50_000_000,
            max_body: 1024 * 1024,
            default_deadline_ms: 300_000,
            reduced: false,
            store: None,
            read_stores: Vec::new(),
            shard_id: 0,
            restart_gen: 0,
            drain_grace_ms: 2_000,
            keep_alive_requests: 64,
            keep_alive_idle_ms: 5_000,
        }
    }
}

/// Bounded handoff queue between the accept loop and the workers.
struct ConnQueue {
    pending: Mutex<(VecDeque<TcpStream>, bool)>,
    ready: Condvar,
    cap: usize,
}

impl ConnQueue {
    fn new(cap: usize) -> ConnQueue {
        ConnQueue {
            pending: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues a connection; returns it back when the queue is full
    /// (the caller sheds it) or already closed.
    fn push(&self, stream: TcpStream) -> Result<usize, TcpStream> {
        let mut state = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
        let (queue, closed) = &mut *state;
        if *closed || queue.len() >= self.cap {
            return Err(stream);
        }
        queue.push_back(stream);
        let depth = queue.len();
        drop(state);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Dequeues the next connection, blocking; `None` once the queue is
    /// closed *and* drained — the worker-exit condition, which is what
    /// lets an in-flight request finish during a graceful drain.
    fn pop(&self) -> Option<(TcpStream, usize)> {
        let mut state = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(stream) = state.0.pop_front() {
                let depth = state.0.len();
                return Some((stream, depth));
            }
            if state.1 {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn close(&self) {
        self.pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .1 = true;
        self.ready.notify_all();
    }

    fn is_empty(&self) -> bool {
        self.pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .0
            .is_empty()
    }
}

/// State shared by the accept loop and every worker.
struct Shared {
    cfg: ServerConfig,
    engine: Arc<Engine>,
    testbed: &'static Testbed,
    admission: Arc<AdmissionControl>,
    reaper: Arc<DeadlineReaper>,
    queue: ConnQueue,
    draining: AtomicBool,
    /// Workers currently serving a connection (not blocked in `pop`).
    busy: AtomicUsize,
    /// In-flight batch tokens, cancelled wholesale on drain.
    tokens: Mutex<HashMap<u64, CancelToken>>,
    token_seq: AtomicU64,
}

impl Shared {
    /// Registers a batch token for drain cancellation; the returned id
    /// unregisters it.
    fn track_token(&self, token: CancelToken) -> u64 {
        let id = self.token_seq.fetch_add(1, Ordering::Relaxed);
        self.tokens
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(id, token);
        id
    }

    fn untrack_token(&self, id: u64) {
        self.tokens
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&id);
    }

    fn cancel_all_tokens(&self) {
        for token in self
            .tokens
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
        {
            token.cancel();
        }
    }

    /// Whether a drain can complete: no tracked batch, no queued
    /// connection, no worker mid-connection. Probes arriving during the
    /// drain make `busy` flicker; the drain loop just polls again.
    fn drained(&self) -> bool {
        self.tokens
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_empty()
            && self.queue.is_empty()
            && self.busy.load(Ordering::SeqCst) == 0
    }
}

/// The bound-but-not-yet-running daemon. Binding is split from running
/// so in-process embedders (the benchmark harness, tests) can learn the
/// ephemeral port before the accept loop starts.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener and assembles the engine, testbed, admission
    /// gate and deadline reaper.
    ///
    /// The engine honors `VOLTNOISE_STORE` (persistent JSONL result
    /// store — the resume substrate) and `VOLTNOISE_THREADS` exactly as
    /// every other entry point in the workspace does; an explicit
    /// [`ServerConfig::store`] overrides the env, and
    /// [`ServerConfig::read_stores`] attach sibling shards read-only.
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the address cannot be bound or a
    /// configured store path cannot be opened.
    pub fn bind(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let testbed = if cfg.reduced {
            Testbed::fast()
        } else {
            Testbed::shared()
        };
        let mut engine = Engine::new();
        if let Some(path) = &cfg.store {
            engine = engine.with_store(path)?;
        }
        for path in &cfg.read_stores {
            engine = engine.with_read_store(path)?;
        }
        engine.set_shard_id(cfg.shard_id);
        engine.set_restart_gen(cfg.restart_gen);
        let shared = Arc::new(Shared {
            engine: Arc::new(engine),
            testbed,
            admission: AdmissionControl::new(cfg.step_ceiling),
            reaper: DeadlineReaper::start(),
            queue: ConnQueue::new(cfg.queue_cap),
            draining: AtomicBool::new(false),
            busy: AtomicUsize::new(0),
            tokens: Mutex::new(HashMap::new()),
            token_seq: AtomicU64::new(0),
            cfg,
        });
        Ok(Server {
            listener,
            shared,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves `:0` to the chosen ephemeral port).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error (cannot happen on a healthy
    /// bound listener).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A flag that stops the accept loop from another thread — the
    /// in-process equivalent of `SIGTERM`, used by embedders that must
    /// not touch the process-global signal flag.
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        self.stop.clone()
    }

    /// The engine behind this server (tests and embedders inspect its
    /// stats directly).
    pub fn engine(&self) -> Arc<Engine> {
        self.shared.engine.clone()
    }

    /// Runs the accept loop until `SIGTERM`/`SIGINT` or the stop
    /// handle, then drains gracefully. The drain happens in two steps:
    /// the instant shutdown is observed, `/readyz` flips to `503
    /// draining` and `/jobs` starts refusing — while the accept loop
    /// *keeps serving probes* and in-flight batches keep running. After
    /// [`ServerConfig::drain_grace_ms`] any still-running batch is
    /// cancelled through its token; once no batch, queued connection or
    /// busy worker remains, the loop exits, flushes the result store
    /// and returns.
    ///
    /// # Errors
    ///
    /// Returns an I/O error only for a listener failure; a clean drain
    /// returns `Ok(())`.
    pub fn run(self) -> io::Result<()> {
        signals::install();
        self.listener.set_nonblocking(true)?;
        let addr = self.local_addr()?;
        // The discovery line: scripts and tests parse the port from it.
        println!("voltnoise-server listening on {addr}");
        let workers: Vec<_> = (0..self.shared.cfg.workers.max(1))
            .map(|i| {
                let shared = self.shared.clone();
                std::thread::Builder::new()
                    .name(format!("conn-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<io::Result<_>>()?;
        let drain_grace = Duration::from_millis(self.shared.cfg.drain_grace_ms);
        let mut drain_started: Option<Instant> = None;
        let mut drain_cancelled = false;
        loop {
            if drain_started.is_none()
                && (signals::shutdown_requested() || self.stop.load(Ordering::SeqCst))
            {
                // Flip readiness *now*, before in-flight batches
                // finish, so a fleet router stops sending new work to
                // this worker the moment its probe lands.
                self.shared.draining.store(true, Ordering::SeqCst);
                drain_started = Some(Instant::now());
            }
            if let Some(started) = drain_started {
                if !drain_cancelled && started.elapsed() >= drain_grace {
                    // Grace expired: reap whatever is still running.
                    self.shared.cancel_all_tokens();
                    drain_cancelled = true;
                }
                if self.shared.drained() {
                    break;
                }
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    match self.shared.queue.push(stream) {
                        Ok(depth) => self.shared.engine.set_queue_depth(depth),
                        Err(stream) => shed_connection(&self.shared, stream),
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }
        self.shared.queue.close();
        for worker in workers {
            let _ = worker.join();
        }
        self.shared.reaper.shutdown();
        if let Some(store) = self.shared.engine.store() {
            store.compact()?;
        }
        self.shared.engine.set_queue_depth(0);
        println!("voltnoise-server drained cleanly");
        Ok(())
    }
}

/// Sheds a connection the queue would not take: `503` + `Retry-After`,
/// counted in the engine's `shed_total`.
fn shed_connection(shared: &Shared, mut stream: TcpStream) {
    shared.engine.note_shed();
    let body = error_body(&[
        ("error", Value::Str("overloaded".to_string())),
        (
            "detail",
            Value::Str("connection queue full; retry later".to_string()),
        ),
    ]);
    let _ = write_response(
        &mut stream,
        503,
        "Service Unavailable",
        "application/json",
        &[("Retry-After", "1".to_string())],
        &body,
        false,
    );
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some((mut stream, depth)) = shared.queue.pop() {
        shared.engine.set_queue_depth(depth);
        shared.busy.fetch_add(1, Ordering::SeqCst);
        serve_connection(shared, &mut stream);
        shared.busy.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Serves up to `keep_alive_requests` sequential requests on one
/// connection. The connection closes early when the peer asks
/// (`Connection: close`), a response write fails, the idle wait for the
/// next request expires, or the server starts draining — so a drain is
/// never held open by an idle keep-alive peer.
fn serve_connection(shared: &Arc<Shared>, stream: &mut TcpStream) {
    let max_requests = shared.cfg.keep_alive_requests.max(1);
    let idle = Duration::from_millis(shared.cfg.keep_alive_idle_ms.max(1));
    for served in 0..max_requests {
        // The first request is already in flight when the connection
        // reaches a worker; later ones are bounded by the idle budget.
        let wait = if served == 0 {
            Duration::from_secs(10)
        } else {
            idle
        };
        let _ = stream.set_read_timeout(Some(wait));
        let request = match read_request(stream, shared.cfg.max_body) {
            Ok(request) => request,
            Err(err) => {
                if let Some((status, reason)) = err.status() {
                    let body = error_body(&[
                        ("error", Value::Str("bad-request".to_string())),
                        ("detail", Value::Str(err.to_string())),
                    ]);
                    let _ = write_response(
                        stream,
                        status,
                        reason,
                        "application/json",
                        &[],
                        &body,
                        false,
                    );
                }
                return;
            }
        };
        let keep = served + 1 < max_requests
            && !shared.draining.load(Ordering::SeqCst)
            && !request.wants_close();
        if !handle_request(shared, stream, &request, keep) {
            return;
        }
    }
}

fn error_body(fields: &[(&str, Value)]) -> String {
    let object = Value::Object(
        fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    );
    serde_json::to_string(&object).unwrap_or_else(|_| "{}".to_string())
}

/// Dispatches one request; returns whether the connection is still
/// usable for another (`keep` honored and every write succeeded).
fn handle_request(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    request: &Request,
    keep: bool,
) -> bool {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            write_response(stream, 200, "OK", "text/plain", &[], "ok\n", keep).is_ok() && keep
        }
        ("GET", "/readyz") => {
            let write = if shared.draining.load(Ordering::SeqCst) {
                write_response(
                    stream,
                    503,
                    "Service Unavailable",
                    "text/plain",
                    &[],
                    "draining\n",
                    keep,
                )
            } else {
                write_response(stream, 200, "OK", "text/plain", &[], "ready\n", keep)
            };
            write.is_ok() && keep
        }
        ("GET", "/stats") => {
            // Publish the admission gauge just-in-time: the stats
            // snapshot is the only consumer.
            shared
                .engine
                .set_admitted_steps(shared.admission.in_flight());
            // The engine counters plus a "signal" section: the
            // campaign's spectral fingerprint (trace counts and
            // bucket-floor quantiles), strict-decodable on the client
            // side via `wire::parse_signal_stats`.
            let mut fields = match shared.engine.stats().to_value() {
                Value::Object(fields) => fields,
                other => vec![("stats".to_string(), other)],
            };
            let signal = SignalStats::of(&shared.engine.telemetry().signal);
            fields.push(("signal".to_string(), signal.to_value()));
            let body = serde_json::to_string_pretty(&Value::Object(fields))
                .unwrap_or_else(|_| "{}".to_string());
            write_response(stream, 200, "OK", "application/json", &[], &body, keep).is_ok() && keep
        }
        ("POST", "/jobs") => handle_jobs(shared, stream, request, keep),
        ("POST", "/drawer") => handle_drawer(shared, stream, request, keep),
        ("POST", "/rack") => handle_rack(shared, stream, request, keep),
        (method, path) => {
            let body = error_body(&[
                ("error", Value::Str("not-found".to_string())),
                (
                    "detail",
                    Value::Str(format!("no route for {method} {path}")),
                ),
            ]);
            write_response(
                stream,
                404,
                "Not Found",
                "application/json",
                &[],
                &body,
                keep,
            )
            .is_ok()
                && keep
        }
    }
}

/// Short stable label of a fault kind for the wire.
fn fault_label(kind: &FaultKind) -> &'static str {
    match kind {
        FaultKind::Solver(_) => "solver",
        FaultKind::Budget(_) => "budget",
        FaultKind::Cancelled(_) => "cancelled",
        FaultKind::Deadline(_) => "deadline",
        FaultKind::Panic(_) => "panic",
    }
}

/// One streamed result line (newline-terminated JSON document).
fn result_line(index: usize, settled: &Result<Arc<NoiseOutcome>, JobFault>) -> String {
    match settled {
        Ok(outcome) => {
            let outcome_json =
                serde_json::to_string(&**outcome).unwrap_or_else(|_| "null".to_string());
            format!("{{\"index\":{index},\"status\":\"ok\",\"outcome\":{outcome_json}}}\n")
        }
        Err(fault) => {
            let detail = Value::Str(fault.fault.to_string());
            let detail_json = serde_json::to_string(&detail).unwrap_or_else(|_| "\"\"".to_string());
            format!(
                "{{\"index\":{index},\"status\":\"fault\",\"kind\":\"{}\",\"attempts\":{},\"detail\":{detail_json}}}\n",
                fault_label(&fault.fault),
                fault.attempts
            )
        }
    }
}

fn handle_jobs(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    request: &Request,
    keep: bool,
) -> bool {
    if shared.draining.load(Ordering::SeqCst) {
        let body = error_body(&[("error", Value::Str("draining".to_string()))]);
        let _ = write_response(
            stream,
            503,
            "Service Unavailable",
            "application/json",
            &[],
            &body,
            false,
        );
        return false;
    }
    let batch = match parse_batch(&request.body) {
        Ok(batch) => batch,
        Err(err) => {
            return write_response(
                stream,
                400,
                "Bad Request",
                "application/json",
                &[],
                &err.to_json(),
                keep,
            )
            .is_ok()
                && keep;
        }
    };
    // Admission: the whole batch enters or the whole batch bounces.
    let permit = match shared.admission.try_admit(batch.estimated_steps()) {
        Ok(permit) => permit,
        Err(rejection) => {
            shared.engine.note_shed();
            let retry_after = rejection.retry_after_secs();
            let body = error_body(&[
                ("error", Value::Str("overloaded".to_string())),
                ("estimated_steps", Value::U64(rejection.estimated)),
                ("in_flight_steps", Value::U64(rejection.in_flight)),
                ("ceiling_steps", Value::U64(rejection.ceiling)),
                ("retry_after_s", Value::U64(retry_after)),
            ]);
            return write_response(
                stream,
                429,
                "Too Many Requests",
                "application/json",
                &[("Retry-After", retry_after.to_string())],
                &body,
                keep,
            )
            .is_ok()
                && keep;
        }
    };
    // Deadline + drain wiring: one token per batch, registered with the
    // reaper (wall clock) and the drain registry (SIGTERM).
    let token = CancelToken::new();
    let deadline_ms = batch
        .deadline_ms
        .unwrap_or(shared.cfg.default_deadline_ms)
        .max(1);
    let _deadline_guard = shared
        .reaper
        .register(token.clone(), Duration::from_millis(deadline_ms));
    let token_id = shared.track_token(token.clone());
    let jobs = build_jobs(&batch, shared.testbed, &token);
    if start_chunked(stream, "application/jsonl", keep).is_err() {
        shared.untrack_token(token_id);
        drop(permit);
        return false;
    }
    // The sink runs on engine worker threads; serialize writes and stop
    // writing (but keep solving — results still enter cache and store)
    // once the peer goes away.
    let writer = Mutex::new(&mut *stream);
    let peer_gone = AtomicBool::new(false);
    let results = shared
        .engine
        .run_jobs_settled_each(&jobs, |index, settled| {
            if peer_gone.load(Ordering::Relaxed) {
                return;
            }
            let line = result_line(index, settled);
            let mut writer = writer.lock().unwrap_or_else(PoisonError::into_inner);
            if write_chunk(&mut writer, &line).is_err() {
                peer_gone.store(true, Ordering::Relaxed);
            }
        });
    shared.untrack_token(token_id);
    drop(permit);
    let faults = results.iter().filter(|r| r.is_err()).count();
    let summary = format!(
        "{{\"done\":true,\"jobs\":{},\"faults\":{faults}}}\n",
        results.len()
    );
    if peer_gone.load(Ordering::Relaxed) {
        return false;
    }
    let mut writer = writer.lock().unwrap_or_else(PoisonError::into_inner);
    let wrote = write_chunk(&mut writer, &summary).is_ok() && finish_chunked(&mut writer).is_ok();
    wrote && keep
}

/// Compiles wire jobs against the testbed. Token injection goes through
/// the per-job config (not the content key), so a wire job resolves to
/// the same cache/store key as the equivalent direct [`SimJob`].
fn build_jobs(batch: &BatchRequest, testbed: &Testbed, token: &CancelToken) -> Vec<SimJob> {
    let factory = SimJob::batch(testbed.chip());
    batch
        .jobs
        .iter()
        .map(|spec| {
            let sync = spec.sync.then(SyncSpec::paper_default);
            let loads = testbed.loads_of_mapping(&spec.mapping, spec.stim_freq_hz, sync);
            factory.job(
                loads,
                NoiseRunConfig {
                    window_s: spec.window_s,
                    record_traces: spec.record_traces,
                    seed: spec.seed,
                    max_steps: spec.max_steps,
                    cancel: Some(token.clone()),
                    ..NoiseRunConfig::default()
                },
            )
        })
        .collect()
}

/// Raw-value wrapper for the drawer route's lenient-parse/strict-check
/// boundary.
struct RawBody(Value);

impl serde::Deserialize for RawBody {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        Ok(RawBody(v.clone()))
    }
}

fn handle_drawer(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    request: &Request,
    keep: bool,
) -> bool {
    let reject = |stream: &mut TcpStream, code: &str, detail: String| -> bool {
        let body = error_body(&[
            ("error", Value::Str("invalid-request".to_string())),
            ("code", Value::Str(code.to_string())),
            ("detail", Value::Str(detail)),
        ]);
        write_response(
            stream,
            400,
            "Bad Request",
            "application/json",
            &[],
            &body,
            keep,
        )
        .is_ok()
            && keep
    };
    let RawBody(root) = match serde_json::from_str::<RawBody>(&request.body) {
        Ok(raw) => raw,
        Err(e) => return reject(stream, "invalid-json", e.to_string()),
    };
    let entries = match root.as_array() {
        Some(entries) if !entries.is_empty() => entries,
        Some(_) => {
            return reject(
                stream,
                "empty-batch",
                "drawer batch must not be empty".into(),
            )
        }
        None => {
            return reject(
                stream,
                "bad-type",
                "drawer batch must be a JSON array of step configs".into(),
            )
        }
    };
    let mut configs: Vec<DrawerStepConfig> = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        match serde::Deserialize::from_value(entry) {
            Ok(cfg) => configs.push(cfg),
            Err(e) => return reject(stream, "bad-type", format!("jobs[{i}]: {e}")),
        }
    }
    let estimated: u64 = configs
        .iter()
        .map(|c| (c.window_s * 4e8).max(1.0) as u64)
        .sum();
    let permit = match shared.admission.try_admit(estimated) {
        Ok(permit) => permit,
        Err(rejection) => {
            shared.engine.note_shed();
            let retry_after = rejection.retry_after_secs();
            let body = error_body(&[
                ("error", Value::Str("overloaded".to_string())),
                ("retry_after_s", Value::U64(retry_after)),
            ]);
            return write_response(
                stream,
                429,
                "Too Many Requests",
                "application/json",
                &[("Retry-After", retry_after.to_string())],
                &body,
                keep,
            )
            .is_ok()
                && keep;
        }
    };
    let mut lines = Vec::with_capacity(configs.len());
    for (i, cfg) in configs.iter().enumerate() {
        let line = match DrawerJob::new(cfg.clone()).and_then(|job| shared.engine.run_drawer(&job))
        {
            Ok(outcome) => {
                let outcome_json =
                    serde_json::to_string(&*outcome).unwrap_or_else(|_| "null".to_string());
                format!("{{\"index\":{i},\"status\":\"ok\",\"outcome\":{outcome_json}}}")
            }
            Err(e) => {
                let detail = serde_json::to_string(&Value::Str(e.to_string()))
                    .unwrap_or_else(|_| "\"\"".to_string());
                format!("{{\"index\":{i},\"status\":\"error\",\"detail\":{detail}}}")
            }
        };
        lines.push(line);
    }
    drop(permit);
    let body = format!("[{}]", lines.join(","));
    write_response(stream, 200, "OK", "application/json", &[], &body, keep).is_ok() && keep
}

/// One wire rack job: a rack shape + variation draw, the site ordinals
/// running the max-dI/dt stressmark (everything else idles), and the
/// solve window/seed. Compiles to a content-keyed rack [`SimJob`], so
/// repeated requests ride the engine's memo cache and store.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RackJobSpec {
    /// Drawers on the rack's supply spine.
    drawers: usize,
    /// Chips per drawer.
    chips_per_drawer: usize,
    /// Seed of the per-chip process-variation draw (0 spread is not a
    /// seed value: pass through [`VariationSpec::paper_default`]).
    variation_seed: u64,
    /// Site ordinals (drawer-major) running the stressmark.
    active: Vec<usize>,
    /// Stressmark stimulus frequency, Hz.
    stim_freq_hz: f64,
    /// TOD-synchronize the stressmark bursts.
    sync: bool,
    /// Simulated window, seconds.
    window_s: f64,
    /// Random seed of the free-run phases.
    seed: u64,
}

fn handle_rack(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    request: &Request,
    keep: bool,
) -> bool {
    let reject = |stream: &mut TcpStream, code: &str, detail: String| -> bool {
        let body = error_body(&[
            ("error", Value::Str("invalid-request".to_string())),
            ("code", Value::Str(code.to_string())),
            ("detail", Value::Str(detail)),
        ]);
        write_response(
            stream,
            400,
            "Bad Request",
            "application/json",
            &[],
            &body,
            keep,
        )
        .is_ok()
            && keep
    };
    let RawBody(root) = match serde_json::from_str::<RawBody>(&request.body) {
        Ok(raw) => raw,
        Err(e) => return reject(stream, "invalid-json", e.to_string()),
    };
    let entries = match root.as_array() {
        Some(entries) if !entries.is_empty() => entries,
        Some(_) => return reject(stream, "empty-batch", "rack batch must not be empty".into()),
        None => {
            return reject(
                stream,
                "bad-type",
                "rack batch must be a JSON array of rack job specs".into(),
            )
        }
    };
    let mut specs: Vec<RackJobSpec> = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let spec: RackJobSpec = match serde::Deserialize::from_value(entry) {
            Ok(spec) => spec,
            Err(e) => return reject(stream, "bad-type", format!("jobs[{i}]: {e}")),
        };
        if spec.drawers == 0 || spec.chips_per_drawer == 0 {
            return reject(
                stream,
                "bad-value",
                format!("jobs[{i}]: rack shape must be at least 1x1"),
            );
        }
        if !(spec.stim_freq_hz.is_finite() && spec.stim_freq_hz > 0.0) {
            return reject(
                stream,
                "bad-value",
                format!("jobs[{i}]: stim_freq_hz must be finite and positive"),
            );
        }
        if !(spec.window_s.is_finite() && spec.window_s > 0.0) {
            return reject(
                stream,
                "bad-value",
                format!("jobs[{i}]: window_s must be finite and positive"),
            );
        }
        let sites = spec.drawers * spec.chips_per_drawer * voltnoise_pdn::NUM_CORES;
        if let Some(&bad) = spec.active.iter().find(|&&s| s >= sites) {
            return reject(
                stream,
                "bad-value",
                format!("jobs[{i}]: active site {bad} is outside the {sites}-site rack"),
            );
        }
        specs.push(spec);
    }
    // Admission: a rack solve scales with its chip count, so the step
    // estimate is the chip-scale window estimate times the population.
    let estimated: u64 = specs
        .iter()
        .map(|s| (s.window_s * 4e8).max(1.0) as u64 * (s.drawers * s.chips_per_drawer) as u64)
        .sum();
    let permit = match shared.admission.try_admit(estimated) {
        Ok(permit) => permit,
        Err(rejection) => {
            shared.engine.note_shed();
            let retry_after = rejection.retry_after_secs();
            let body = error_body(&[
                ("error", Value::Str("overloaded".to_string())),
                ("retry_after_s", Value::U64(retry_after)),
            ]);
            return write_response(
                stream,
                429,
                "Too Many Requests",
                "application/json",
                &[("Retry-After", retry_after.to_string())],
                &body,
                keep,
            )
            .is_ok()
                && keep;
        }
    };
    // Scenarios are shared within the batch: entries naming the same
    // shape + variation draw compile against one built rack PDN.
    let mut scenarios: HashMap<(usize, usize, u64), Arc<RackScenario>> = HashMap::new();
    let mut lines = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        let scenario_key = (spec.drawers, spec.chips_per_drawer, spec.variation_seed);
        let scenario = match scenarios.get(&scenario_key) {
            Some(s) => Ok(s.clone()),
            None => RackScenario::build(
                shared.testbed.chip(),
                spec.drawers,
                spec.chips_per_drawer,
                VariationSpec::paper_default(spec.variation_seed),
            )
            .map(|s| {
                let s = Arc::new(s);
                scenarios.insert(scenario_key, s.clone());
                s
            }),
        };
        let line = match scenario.and_then(|rack| {
            let sync = spec.sync.then(SyncSpec::paper_default);
            let active =
                CoreLoad::Stressmark(shared.testbed.max_stressmark(spec.stim_freq_hz, sync));
            let loads = SiteVec::from_fn(rack.num_sites(), |s| {
                if spec.active.contains(&s) {
                    active.clone()
                } else {
                    CoreLoad::Idle
                }
            });
            let job = SimJob::rack(
                rack,
                loads,
                NoiseRunConfig {
                    window_s: Some(spec.window_s),
                    seed: spec.seed,
                    ..NoiseRunConfig::default()
                },
            );
            shared.engine.run_one(&job)
        }) {
            Ok(outcome) => {
                let outcome_json =
                    serde_json::to_string(&*outcome).unwrap_or_else(|_| "null".to_string());
                format!("{{\"index\":{i},\"status\":\"ok\",\"outcome\":{outcome_json}}}")
            }
            Err(e) => {
                let detail = serde_json::to_string(&Value::Str(e.to_string()))
                    .unwrap_or_else(|_| "\"\"".to_string());
                format!("{{\"index\":{i},\"status\":\"error\",\"detail\":{detail}}}")
            }
        };
        lines.push(line);
    }
    drop(permit);
    let body = format!("[{}]", lines.join(","));
    write_response(stream, 200, "OK", "application/json", &[], &body, keep).is_ok() && keep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conn_queue_bounds_and_closes() {
        let queue = ConnQueue::new(1);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let c1 = TcpStream::connect(addr).unwrap();
        let c2 = TcpStream::connect(addr).unwrap();
        assert!(queue.push(c1).is_ok());
        assert!(queue.push(c2).is_err(), "above cap must bounce");
        let (popped, depth) = queue.pop().unwrap();
        drop(popped);
        assert_eq!(depth, 0);
        queue.close();
        assert!(queue.pop().is_none(), "closed and drained");
        // Closed queue refuses new connections outright.
        let c3 = TcpStream::connect(addr).unwrap();
        assert!(queue.push(c3).is_err());
    }

    #[test]
    fn result_lines_are_wire_shaped() {
        let fault = JobFault {
            key: Box::new(fake_key()),
            attempts: 2,
            fault: FaultKind::Deadline(voltnoise_pdn::PdnError::DeadlineExceeded { t: 1e-6 }),
        };
        let line = result_line(3, &Err(fault));
        assert!(line.contains("\"index\":3"), "{line}");
        assert!(line.contains("\"status\":\"fault\""), "{line}");
        assert!(line.contains("\"kind\":\"deadline\""), "{line}");
        assert!(line.contains("\"attempts\":2"), "{line}");
        assert!(line.ends_with('\n'), "{line:?}");
    }

    fn fake_key() -> voltnoise_system::engine::JobKey {
        let tb = Testbed::fast();
        let factory = SimJob::batch(tb.chip());
        let loads: [voltnoise_system::noise::CoreLoad; voltnoise_pdn::NUM_CORES] =
            std::array::from_fn(|_| voltnoise_system::noise::CoreLoad::Idle);
        factory.job(loads, NoiseRunConfig::default()).key().clone()
    }

    /// An in-process reduced server for route tests; returns (addr,
    /// stop handle, engine, join handle).
    fn spawn_reduced() -> (
        String,
        Arc<AtomicBool>,
        Arc<Engine>,
        std::thread::JoinHandle<io::Result<()>>,
    ) {
        let server = Server::bind(ServerConfig {
            reduced: true,
            ..ServerConfig::default()
        })
        .expect("bind loopback server");
        let addr = server.local_addr().expect("local addr").to_string();
        let stop = server.stop_handle();
        let engine = server.engine();
        let daemon = std::thread::spawn(move || server.run());
        (addr, stop, engine, daemon)
    }

    #[test]
    fn rack_route_solves_variated_jobs_and_memoizes_repeats() {
        let (addr, stop, engine, daemon) = spawn_reduced();
        let timeout = Duration::from_secs(120);
        let body = r#"[
            {"drawers":1,"chips_per_drawer":2,"variation_seed":7,"active":[0,7],
             "stim_freq_hz":2.5e6,"sync":true,"window_s":4e-6,"seed":1},
            {"drawers":1,"chips_per_drawer":2,"variation_seed":7,"active":[0,7],
             "stim_freq_hz":2.5e6,"sync":true,"window_s":4e-6,"seed":1}
        ]"#;
        let resp = crate::http_request(&addr, "POST", "/rack", Some(body), timeout)
            .expect("rack round trip");
        assert_eq!(resp.status, 200, "rack batch failed: {}", resp.body);
        assert!(
            resp.body.contains("\"index\":0,\"status\":\"ok\"")
                && resp.body.contains("\"index\":1,\"status\":\"ok\""),
            "both entries must settle ok: {}",
            resp.body
        );
        // 12 sites on the 1x2 rack: the outcome is rack-shaped.
        assert!(
            resp.body.contains("\"pct_p2p\":["),
            "outcome must carry per-site readings: {}",
            resp.body
        );
        let stats = engine.stats();
        assert_eq!(
            stats.solves, 1,
            "identical rack jobs must dedupe to one solve"
        );
        assert!(stats.cache_hits >= 1, "the repeat must ride the memo");
        stop.store(true, Ordering::SeqCst);
        daemon.join().expect("server thread").expect("clean drain");
    }

    #[test]
    fn rack_route_rejects_out_of_range_sites_and_bad_shapes() {
        let (addr, stop, engine, daemon) = spawn_reduced();
        let timeout = Duration::from_secs(30);
        let cases = [
            // Site 99 is outside the 1x1 rack's 6 sites.
            r#"[{"drawers":1,"chips_per_drawer":1,"variation_seed":1,"active":[99],
                 "stim_freq_hz":2.5e6,"sync":false,"window_s":2e-6,"seed":1}]"#,
            // Degenerate 0-drawer shape.
            r#"[{"drawers":0,"chips_per_drawer":1,"variation_seed":1,"active":[0],
                 "stim_freq_hz":2.5e6,"sync":false,"window_s":2e-6,"seed":1}]"#,
            // Non-positive window.
            r#"[{"drawers":1,"chips_per_drawer":1,"variation_seed":1,"active":[0],
                 "stim_freq_hz":2.5e6,"sync":false,"window_s":0.0,"seed":1}]"#,
            // Not an array.
            r#"{"jobs":[]}"#,
        ];
        for body in cases {
            let resp = crate::http_request(&addr, "POST", "/rack", Some(body), timeout)
                .expect("rack round trip");
            assert_eq!(resp.status, 400, "must reject: {body} -> {}", resp.body);
            assert!(
                resp.body.contains("\"error\":\"invalid-request\""),
                "machine-readable error expected: {}",
                resp.body
            );
        }
        assert_eq!(engine.stats().solves, 0, "rejected specs must not solve");
        stop.store(true, Ordering::SeqCst);
        daemon.join().expect("server thread").expect("clean drain");
    }
}
