//! Regenerates paper Fig. 8: oscilloscope shots of core-0 voltage under
//! the maximum dI/dt stressmark near the resonant band (20 us window and
//! a single extracted period).

use voltnoise::prelude::*;
use voltnoise_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let tb = if opts.reduced { Testbed::fast() } else { Testbed::shared() };
    let shot = run_scope_shot(tb, &ScopeConfig::default()).expect("scope capture runs");
    opts.finish(&shot.render(), &shot);
}
