//! Optimization opportunity studies (paper SVII): noise-aware workload
//! mapping and utilization-based dynamic guard-banding.
//!
//! Run with: `cargo run --release --example mapping_policies`

use voltnoise::prelude::*;

fn main() {
    let tb = Testbed::shared();

    println!("== Fig. 14: same-row vs split placement of 3 stressmarks ==");
    let cmp = voltnoise::analysis::run_mapping_comparison(tb, 2.5e6).expect("comparison runs");
    print!("{}", cmp.render());

    println!("== Fig. 15: best vs worst mapping per workload count ==");
    let gain = run_mapping_gain(
        tb,
        &MappingGainConfig {
            counts: vec![1, 2, 3, 4, 5],
            ..MappingGainConfig::paper()
        },
    )
    .expect("mapping study runs");
    print!("{}", gain.render());

    println!("== SVII-B: utilization-based dynamic guard-banding ==");
    let study = voltnoise::analysis::run_guardband_study(
        tb,
        &voltnoise::analysis::GuardbandConfig::reduced(),
    )
    .expect("guardband study runs");
    print!("{}", study.render());
}
