//! Solver-level telemetry: exact work counters and optional phase
//! timing.
//!
//! The counters answer "where does solve time go" without perturbing
//! what is solved: they are plain integer tallies of the algebraic work
//! a run performed (accepted steps, LU factorizations, factor-cache
//! hits, back-substitutions), deterministic for a given netlist and
//! configuration, and **never** part of any result content — a cached or
//! store-resumed outcome stays byte-identical whether or not anyone
//! looks at the counters.
//!
//! Phase *timing* ([`PhaseTimes`]) is the opposite: wall-clock and
//! therefore nondeterministic. It is only collected when tracing is
//! enabled ([`trace_enabled`], i.e. `VOLTNOISE_TRACE` set to anything
//! but `0`), costs two branch checks per step when disabled, and flows
//! into diagnostics only — never into figures.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU8, Ordering};

/// Exact work counters of one transient run (or an aggregate of many).
///
/// All fields are deterministic: the same netlist, drive and
/// configuration produce the same counters on every machine. They are
/// *observations about* a solve, not part of its result, so they are
/// excluded from content keys and from [`crate::transient`] output
/// serialization paths that feed caches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct SolverCounters {
    /// Accepted integration steps.
    pub steps: u64,
    /// DC operating-point solves.
    pub dc_solves: u64,
    /// LU factorizations computed (factor-cache misses, plus DC system
    /// factorizations).
    pub lu_factorizations: u64,
    /// Factor-cache hits: steps that reused an existing factorization.
    pub factor_cache_hits: u64,
    /// Back-substitutions (`solve`/`solve_into` calls).
    pub solve_calls: u64,
    /// Estimated floating-point operations. Dense solves use the dense
    /// cost model ([`crate::linalg::Matrix::lu_flops`] /
    /// [`crate::linalg::LuFactors::solve_flops`]); sparse solves count
    /// nnz-aware actual work ([`crate::sparse::SparseLu::factor_flops`] /
    /// [`crate::sparse::SparseLu::solve_flops`]).
    pub est_flops: u64,
    /// Back-substitutions performed by the sparse backend (a subset of
    /// `solve_calls`; zero whenever the system stayed on the dense fast
    /// path).
    pub sparse_solves: u64,
    /// Sparse refactorizations that reused a previously discovered
    /// elimination order instead of re-running pivot selection.
    pub pattern_reuses: u64,
    /// Right-hand sides solved through a batched multi-RHS
    /// back-substitution (each RHS in a batch counts once; a subset of
    /// `solve_calls`). Zero on paths that solve one RHS at a time.
    pub batched_solves: u64,
    /// Reduced-order-model integration steps (each one a dense solve of
    /// the projected system). Disjoint from `solve_calls`, which counts
    /// full-order back-substitutions only.
    pub rom_solves: u64,
    /// Total reduced states across every reduced-order model built (one
    /// ROM of order `q` contributes `q`). Summed like every other
    /// counter so merging stays associative.
    pub rom_states: u64,
}

/// Hand-written deserialization so the batched/ROM counters default to
/// zero when absent: stats JSON written before those fields existed
/// must keep parsing (the vendored serde derive has no `#[serde
/// (default)]`).
impl Deserialize for SolverCounters {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::msg("expected object for SolverCounters"))?;
        let opt = |name: &str| -> Result<u64, serde::Error> {
            match obj.iter().find(|(k, _)| k == name) {
                Some((_, v)) => Deserialize::from_value(v),
                None => Ok(0),
            }
        };
        Ok(SolverCounters {
            steps: serde::field(obj, "steps")?,
            dc_solves: serde::field(obj, "dc_solves")?,
            lu_factorizations: serde::field(obj, "lu_factorizations")?,
            factor_cache_hits: serde::field(obj, "factor_cache_hits")?,
            solve_calls: serde::field(obj, "solve_calls")?,
            est_flops: serde::field(obj, "est_flops")?,
            sparse_solves: serde::field(obj, "sparse_solves")?,
            pattern_reuses: serde::field(obj, "pattern_reuses")?,
            batched_solves: opt("batched_solves")?,
            rom_solves: opt("rom_solves")?,
            rom_states: opt("rom_states")?,
        })
    }
}

impl SolverCounters {
    /// Adds another counter set into this one. Merging is associative
    /// and commutative, so per-run counters can be aggregated in any
    /// order (worker threads included).
    pub fn merge(&mut self, other: &SolverCounters) {
        self.steps += other.steps;
        self.dc_solves += other.dc_solves;
        self.lu_factorizations += other.lu_factorizations;
        self.factor_cache_hits += other.factor_cache_hits;
        self.solve_calls += other.solve_calls;
        self.est_flops += other.est_flops;
        self.sparse_solves += other.sparse_solves;
        self.pattern_reuses += other.pattern_reuses;
        self.batched_solves += other.batched_solves;
        self.rom_solves += other.rom_solves;
        self.rom_states += other.rom_states;
    }

    /// True when every counter is zero (no work recorded).
    pub fn is_zero(&self) -> bool {
        *self == SolverCounters::default()
    }
}

/// Cumulative wall-clock time spent in each solver phase, nanoseconds.
///
/// All zeros unless the producing run had phase timing enabled
/// ([`crate::transient::TransientConfig::collect_phase_times`]).
/// Wall-clock values are nondeterministic; they exist for diagnostics
/// and benchmark reports, never for figures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTimes {
    /// Building the per-step right-hand side (sources + companion
    /// history).
    pub assemble_ns: u64,
    /// LU factorization (cache misses only).
    pub factor_ns: u64,
    /// Back-substitution of the factored system.
    pub step_ns: u64,
    /// Divergence validation and element-state advance.
    pub validate_ns: u64,
}

impl PhaseTimes {
    /// Adds another phase-time set into this one (associative,
    /// commutative).
    pub fn merge(&mut self, other: &PhaseTimes) {
        self.assemble_ns += other.assemble_ns;
        self.factor_ns += other.factor_ns;
        self.step_ns += other.step_ns;
        self.validate_ns += other.validate_ns;
    }

    /// Total time across all phases, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.assemble_ns + self.factor_ns + self.step_ns + self.validate_ns
    }
}

/// Tri-state trace flag: 0 = read `VOLTNOISE_TRACE` on first use,
/// 1 = disabled, 2 = enabled.
static TRACE: AtomicU8 = AtomicU8::new(0);

/// Whether wall-clock tracing is enabled for this process.
///
/// Resolved from the `VOLTNOISE_TRACE` environment variable on first
/// call: unset, empty, or `0` means disabled (the default — figures are
/// generated untraced); any other value enables it. The resolved value
/// is cached; [`set_trace`] overrides it at any time.
pub fn trace_enabled() -> bool {
    match TRACE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let on = std::env::var("VOLTNOISE_TRACE").is_ok_and(|v| {
                let v = v.trim();
                !v.is_empty() && v != "0"
            });
            TRACE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Forces the process-wide trace flag, overriding `VOLTNOISE_TRACE`.
///
/// Exists for harnesses and tests that must compare traced and untraced
/// runs within one process without racing on environment variables.
/// Tracing affects diagnostics only — toggling it never changes any
/// simulated result (an invariant the golden-output tests enforce).
pub fn set_trace(enabled: bool) {
    TRACE.store(if enabled { 2 } else { 1 }, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_associative_and_total_preserving() {
        let a = SolverCounters {
            steps: 1,
            dc_solves: 2,
            lu_factorizations: 3,
            factor_cache_hits: 4,
            solve_calls: 5,
            est_flops: 6,
            sparse_solves: 7,
            pattern_reuses: 8,
            batched_solves: 9,
            rom_solves: 10,
            rom_states: 11,
        };
        let b = SolverCounters {
            steps: 10,
            dc_solves: 20,
            lu_factorizations: 30,
            factor_cache_hits: 40,
            solve_calls: 50,
            est_flops: 60,
            sparse_solves: 70,
            pattern_reuses: 80,
            batched_solves: 90,
            rom_solves: 100,
            rom_states: 110,
        };
        let c = SolverCounters {
            steps: 100,
            ..SolverCounters::default()
        };
        let mut ab = a;
        ab.merge(&b);
        let mut ab_c = ab;
        ab_c.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut a_bc = a;
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c.steps, 111);
        assert_eq!(ab_c.solve_calls, 55);
        assert_eq!(ab_c.sparse_solves, 77);
        assert_eq!(ab_c.pattern_reuses, 88);
        assert_eq!(ab_c.batched_solves, 99);
        assert_eq!(ab_c.rom_solves, 110);
        assert_eq!(ab_c.rom_states, 121);
    }

    #[test]
    fn counters_json_without_new_fields_still_parses() {
        // Stats JSON written before the batched/ROM counters existed
        // must keep round-tripping: the new fields default to zero.
        let legacy = r#"{"steps":1,"dc_solves":2,"lu_factorizations":3,
            "factor_cache_hits":4,"solve_calls":5,"est_flops":6,
            "sparse_solves":7,"pattern_reuses":8}"#;
        let c: SolverCounters = serde_json::from_str(legacy).unwrap();
        assert_eq!(c.steps, 1);
        assert_eq!(c.batched_solves, 0);
        assert_eq!(c.rom_solves, 0);
        assert_eq!(c.rom_states, 0);
    }

    #[test]
    fn zero_check_and_phase_total() {
        assert!(SolverCounters::default().is_zero());
        let mut p = PhaseTimes::default();
        assert_eq!(p.total_ns(), 0);
        p.merge(&PhaseTimes {
            assemble_ns: 1,
            factor_ns: 2,
            step_ns: 3,
            validate_ns: 4,
        });
        assert_eq!(p.total_ns(), 10);
    }

    #[test]
    fn set_trace_overrides() {
        set_trace(true);
        assert!(trace_enabled());
        set_trace(false);
        assert!(!trace_enabled());
    }
}
