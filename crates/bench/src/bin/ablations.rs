//! Runs the DESIGN.md ablation studies: timestep refinement, split vs
//! merged voltage domains, deep-trench vs legacy decap, and the IPC
//! pre-filter.

use voltnoise::analysis::ablation;
use voltnoise::prelude::*;
use voltnoise_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let tb = if opts.reduced {
        Testbed::fast()
    } else {
        Testbed::shared()
    };

    let step = ablation::run_step_ablation(tb.chip()).expect("step ablation runs");
    println!(
        "# ablation 1: edge-refined stepping: {} steps vs {} uniform (p2p error {:.2} %)",
        step.refined_steps,
        step.uniform_steps,
        step.p2p_rel_error * 100.0
    );

    let decap = ablation::run_decap_ablation().expect("decap ablation runs");
    println!(
        "# ablation 3: first droop {:.3e} Hz (deep trench) vs {:.3e} Hz (legacy 1/40 decap)",
        decap.modern_first_droop_hz, decap.legacy_first_droop_hz
    );

    let filt = ablation::run_filter_ablation(tb);
    println!(
        "# ablation 4: IPC pre-filter: {} power evaluations instead of {} (winner {:.2} W)",
        filt.evals_with_filter, filt.evals_without_filter, filt.filtered_winner_w
    );

    let campaign = if opts.reduced {
        DeltaIConfig::reduced()
    } else {
        DeltaIConfig {
            mappings_per_distribution: 4,
            ..DeltaIConfig::paper()
        }
    };
    let dom = ablation::run_domain_ablation(tb, &campaign).expect("domain ablation runs");
    println!(
        "# ablation 2: correlation cluster gap {:.3} (split domains) vs {:.3} (merged)",
        dom.split_domain_gap, dom.merged_domain_gap
    );
}
