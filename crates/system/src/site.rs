//! Topology-indexed core identity: [`Site`], [`SiteSpace`] and
//! [`SiteVec`].
//!
//! Every scenario in the workspace used to address cores with a bare
//! `usize` into `[_; NUM_CORES]` arrays, hard-wiring the single-chip
//! topology into every API. This module replaces that convention with a
//! *site*: the `(drawer, chip, core)` coordinate of one core slot in a
//! rack. A [`SiteSpace`] enumerates the sites of a concrete topology and
//! provides the bijection between sites and flat ordinals (drawer-major,
//! then chip, then core — the same flat order [`voltnoise_pdn::RackPdn`]
//! assigns its current-source ordinals, so `SiteSpace::ordinal` is also
//! the drive-slot index). [`SiteVec`] is a site-ordinal-indexed vector
//! that replaces the fixed arrays; it dereferences to a slice, so
//! indexing, iteration and slicing at existing call sites read
//! unchanged, and it serializes exactly like the array it replaces (a
//! JSON array), keeping every golden byte-identical.
//!
//! The chip-scale paths are the 1 drawer × 1 chip × [`NUM_CORES`]
//! special case ([`SiteSpace::chip_scale`]).

use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use voltnoise_pdn::topology::NUM_CORES;

/// Identity of one core slot in a rack: which drawer, which chip on
/// that drawer's spine, which core on that chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Site {
    /// Drawer index on the rack's supply spine.
    pub drawer: usize,
    /// Chip index on the drawer's board spine.
    pub chip: usize,
    /// Core index within the chip.
    pub core: usize,
}

/// The site set of a concrete topology: `drawers × chips_per_drawer ×
/// cores_per_chip` slots, with flat ordinals assigned in
/// (drawer, chip, core) lexicographic order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SiteSpace {
    drawers: usize,
    chips_per_drawer: usize,
    cores_per_chip: usize,
}

impl SiteSpace {
    /// A site space with the given extents (each clamped to ≥ 1: an
    /// empty site dimension is never meaningful).
    pub fn new(drawers: usize, chips_per_drawer: usize, cores_per_chip: usize) -> SiteSpace {
        SiteSpace {
            drawers: drawers.max(1),
            chips_per_drawer: chips_per_drawer.max(1),
            cores_per_chip: cores_per_chip.max(1),
        }
    }

    /// The single-chip special case: 1 drawer × 1 chip × [`NUM_CORES`]
    /// cores. Every pre-rack experiment runs in this space.
    pub fn chip_scale() -> SiteSpace {
        SiteSpace::new(1, 1, NUM_CORES)
    }

    /// A rack of `drawers` drawers carrying `chips` [`NUM_CORES`]-core
    /// chips each.
    pub fn rack(drawers: usize, chips: usize) -> SiteSpace {
        SiteSpace::new(drawers, chips, NUM_CORES)
    }

    /// Number of drawers.
    pub fn drawers(&self) -> usize {
        self.drawers
    }

    /// Chips per drawer.
    pub fn chips_per_drawer(&self) -> usize {
        self.chips_per_drawer
    }

    /// Cores per chip.
    pub fn cores_per_chip(&self) -> usize {
        self.cores_per_chip
    }

    /// Total number of sites.
    pub fn num_sites(&self) -> usize {
        self.drawers * self.chips_per_drawer * self.cores_per_chip
    }

    /// Total number of chips.
    pub fn num_chips(&self) -> usize {
        self.drawers * self.chips_per_drawer
    }

    /// Whether `site` lies within this space.
    pub fn contains(&self, site: Site) -> bool {
        site.drawer < self.drawers
            && site.chip < self.chips_per_drawer
            && site.core < self.cores_per_chip
    }

    /// Flat ordinal of a site (drawer-major). This is also the drive
    /// slot of the site's current source in the rack netlist.
    ///
    /// # Panics
    ///
    /// Panics when `site` lies outside the space.
    pub fn ordinal(&self, site: Site) -> usize {
        assert!(self.contains(site), "site {site:?} outside space {self:?}");
        (site.drawer * self.chips_per_drawer + site.chip) * self.cores_per_chip + site.core
    }

    /// The site of a flat ordinal (inverse of [`SiteSpace::ordinal`]).
    ///
    /// # Panics
    ///
    /// Panics when `ordinal ≥ num_sites()`.
    pub fn site(&self, ordinal: usize) -> Site {
        assert!(
            ordinal < self.num_sites(),
            "ordinal {ordinal} outside space {self:?}"
        );
        let core = ordinal % self.cores_per_chip;
        let chip_flat = ordinal / self.cores_per_chip;
        Site {
            drawer: chip_flat / self.chips_per_drawer,
            chip: chip_flat % self.chips_per_drawer,
            core,
        }
    }

    /// Iterates every site in ordinal order.
    pub fn sites(&self) -> impl Iterator<Item = Site> + '_ {
        (0..self.num_sites()).map(move |o| self.site(o))
    }
}

/// A site-ordinal-indexed vector: the growable replacement for the
/// `[_; NUM_CORES]` arrays that hard-wired chip scale into the scenario
/// APIs.
///
/// `SiteVec` dereferences to a slice, so `v[i]`, `v.iter()`, `v.len()`
/// and `&v[..]` all work as they did on the arrays. It serializes as a
/// plain JSON array — exactly the bytes the fixed arrays produced — so
/// goldens, the persistent store and the server wire format are
/// unchanged by the migration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SiteVec<T>(Vec<T>);

impl<T> SiteVec<T> {
    /// An empty site vector.
    pub fn new() -> SiteVec<T> {
        SiteVec(Vec::new())
    }

    /// A site vector produced by calling `f` on each ordinal `0..n`.
    pub fn from_fn(n: usize, f: impl FnMut(usize) -> T) -> SiteVec<T> {
        SiteVec((0..n).map(f).collect())
    }

    /// A site vector of `n` copies of `value`.
    pub fn from_elem(value: T, n: usize) -> SiteVec<T>
    where
        T: Clone,
    {
        SiteVec(vec![value; n])
    }

    /// Appends a value (next ordinal).
    pub fn push(&mut self, value: T) {
        self.0.push(value);
    }

    /// The underlying vector.
    pub fn into_inner(self) -> Vec<T> {
        self.0
    }

    /// Copies the elements into a fixed-size array — the bridge back to
    /// the analysis-layer code that still reasons in chip-scale arrays.
    ///
    /// # Panics
    ///
    /// Panics when the vector holds fewer than `N` elements.
    pub fn to_array<const N: usize>(&self) -> [T; N]
    where
        T: Copy,
    {
        assert!(self.0.len() >= N, "SiteVec of {} < {N}", self.0.len());
        std::array::from_fn(|i| self.0[i])
    }
}

impl<T> Default for SiteVec<T> {
    fn default() -> SiteVec<T> {
        SiteVec::new()
    }
}

impl<T> std::ops::Deref for SiteVec<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.0
    }
}

impl<T> std::ops::DerefMut for SiteVec<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.0
    }
}

impl<T> From<Vec<T>> for SiteVec<T> {
    fn from(v: Vec<T>) -> SiteVec<T> {
        SiteVec(v)
    }
}

impl<T, const N: usize> From<[T; N]> for SiteVec<T> {
    fn from(a: [T; N]) -> SiteVec<T> {
        SiteVec(a.into_iter().collect())
    }
}

impl<T> FromIterator<T> for SiteVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> SiteVec<T> {
        SiteVec(iter.into_iter().collect())
    }
}

impl<T> IntoIterator for SiteVec<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a, T> IntoIterator for &'a SiteVec<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl<T: Serialize> Serialize for SiteVec<T> {
    fn to_value(&self) -> Value {
        self.0.to_value()
    }
}

impl<T: Deserialize> Deserialize for SiteVec<T> {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        Vec::<T>::from_value(v).map(SiteVec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_scale_is_the_degenerate_space() {
        let s = SiteSpace::chip_scale();
        assert_eq!(s.num_sites(), NUM_CORES);
        assert_eq!(s.num_chips(), 1);
        for i in 0..NUM_CORES {
            let site = s.site(i);
            assert_eq!((site.drawer, site.chip, site.core), (0, 0, i));
            assert_eq!(s.ordinal(site), i);
        }
    }

    #[test]
    fn rack_ordinals_round_trip_in_drawer_major_order() {
        let s = SiteSpace::rack(2, 3);
        assert_eq!(s.num_sites(), 2 * 3 * NUM_CORES);
        assert_eq!(s.num_chips(), 6);
        let mut seen = 0usize;
        for (o, site) in s.sites().enumerate() {
            assert_eq!(s.ordinal(site), o);
            assert_eq!(s.site(o), site);
            seen += 1;
        }
        assert_eq!(seen, s.num_sites());
        // Drawer-major: the first chip's cores come first.
        assert_eq!(
            s.site(NUM_CORES),
            Site {
                drawer: 0,
                chip: 1,
                core: 0
            }
        );
        assert_eq!(
            s.site(3 * NUM_CORES),
            Site {
                drawer: 1,
                chip: 0,
                core: 0
            }
        );
    }

    #[test]
    fn site_vec_serializes_exactly_like_the_array_it_replaces() {
        let arr = [1.5f64, 2.5, 3.5];
        let sv = SiteVec::from(arr);
        assert_eq!(
            serde_json::to_string(&arr).unwrap(),
            serde_json::to_string(&sv).unwrap()
        );
        let back: SiteVec<f64> =
            serde_json::from_str(&serde_json::to_string(&sv).unwrap()).unwrap();
        assert_eq!(back, sv);
    }

    #[test]
    fn site_vec_derefs_to_slice_semantics() {
        let mut v = SiteVec::from_fn(4, |i| i * 10);
        assert_eq!(v[2], 20);
        v[2] = 7;
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 10, 7, 30]);
        let arr: [usize; 3] = v.to_array();
        assert_eq!(arr, [0, 10, 7]);
    }
}
