//! Noise-aware task scheduling over time (paper §VII-A, operationalized).
//!
//! The paper proposes "a task mapping policy with the objective of
//! minimizing the worst-case noise", so that the voltage margin can be
//! squeezed proactively. This module characterizes the noise of core
//! occupancies, wraps the result in placement policies, and replays job
//! traces through a small discrete-event scheduler to compare the
//! time-weighted margin requirement of a naive scheduler against the
//! noise-aware one.
//!
//! Occupancies are represented by [`Occupancy`], a site-indexed bitset
//! sized to the scenario (the historical `u8` mask silently capped the
//! scheduler at eight cores — a latent overflow this type retires).
//! Policies consult a [`NoiseModel`]: either a fully enumerated
//! [`NoiseTable`] (chip scale, 2^6 entries, characterized through the
//! engine so the solves are cached, deduplicated and crash-resumable)
//! or a lazy [`EngineNoiseModel`] that solves occupancies on demand
//! (rack scale, where enumerating 2^sites is infeasible).

use crate::engine::{Engine, JobBatch, SimJob};
use crate::noise::{CoreLoad, NoiseRunConfig};
use crate::rack::RackScenario;
use crate::site::SiteVec;
use crate::testbed::Testbed;
use crate::workload::{Mapping, WorkloadKind};
use serde::{Deserialize, Error as SerdeError, MapKey, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use voltnoise_pdn::topology::NUM_CORES;
use voltnoise_pdn::PdnError;
use voltnoise_stressmark::SyncSpec;

/// A set of occupied sites, sized to a concrete scenario. The
/// site-count-aware replacement for the old `u8` occupancy mask, which
/// silently dropped any site past bit 7.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Occupancy {
    /// Bit `i % 64` of word `i / 64` is site `i`.
    bits: Vec<u64>,
    sites: usize,
}

impl Occupancy {
    /// The empty occupancy of a `sites`-site scenario.
    pub fn empty(sites: usize) -> Occupancy {
        Occupancy {
            bits: vec![0; sites.div_ceil(64).max(1)],
            sites,
        }
    }

    /// Builds an occupancy from a flat bitmask (bit `i` = site `i`).
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::DimensionMismatch`] when the mask sets a bit
    /// at or beyond `sites` — the failure mode the old `u8` mask hid by
    /// silent truncation.
    pub fn from_mask(mask: u64, sites: usize) -> Result<Occupancy, PdnError> {
        let width = 64 - mask.leading_zeros() as usize;
        if width > sites {
            return Err(PdnError::DimensionMismatch {
                expected: sites,
                actual: width,
            });
        }
        let mut occ = Occupancy::empty(sites);
        occ.bits[0] = mask;
        Ok(occ)
    }

    /// Number of sites this occupancy is sized for.
    pub fn sites(&self) -> usize {
        self.sites
    }

    /// Whether `site` is occupied.
    ///
    /// # Panics
    ///
    /// Panics when `site >= sites()`.
    pub fn is_set(&self, site: usize) -> bool {
        assert!(site < self.sites, "site {site} >= {} sites", self.sites);
        self.bits[site / 64] & (1u64 << (site % 64)) != 0
    }

    /// Marks `site` occupied.
    ///
    /// # Panics
    ///
    /// Panics when `site >= sites()`.
    pub fn set(&mut self, site: usize) {
        assert!(site < self.sites, "site {site} >= {} sites", self.sites);
        self.bits[site / 64] |= 1u64 << (site % 64);
    }

    /// Marks `site` free.
    ///
    /// # Panics
    ///
    /// Panics when `site >= sites()`.
    pub fn clear(&mut self, site: usize) {
        assert!(site < self.sites, "site {site} >= {} sites", self.sites);
        self.bits[site / 64] &= !(1u64 << (site % 64));
    }

    /// A copy with `site` additionally occupied.
    ///
    /// # Panics
    ///
    /// Panics when `site >= sites()`.
    pub fn with(&self, site: usize) -> Occupancy {
        let mut next = self.clone();
        next.set(site);
        next
    }

    /// Number of occupied sites.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether every site is occupied.
    pub fn is_full(&self) -> bool {
        self.count() == self.sites
    }

    /// Iterates the free sites in ascending order.
    pub fn free_sites(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.sites).filter(move |&i| !self.is_set(i))
    }
}

impl MapKey for Occupancy {
    fn to_key(&self) -> String {
        let mut key = format!("{}:", self.sites);
        for w in self.bits.iter().rev() {
            key.push_str(&format!("{w:016x}"));
        }
        key
    }

    fn from_key(s: &str) -> Result<Self, SerdeError> {
        let (sites_s, hex) = s
            .split_once(':')
            .ok_or_else(|| SerdeError::msg("occupancy key missing ':'"))?;
        let sites: usize = sites_s
            .parse()
            .map_err(|_| SerdeError::msg("invalid occupancy site count"))?;
        let words = sites.div_ceil(64).max(1);
        if hex.len() != words * 16 {
            return Err(SerdeError::msg("occupancy key has wrong bit width"));
        }
        let mut bits = Vec::with_capacity(words);
        for k in 0..words {
            let chunk = &hex[(words - 1 - k) * 16..(words - k) * 16];
            bits.push(
                u64::from_str_radix(chunk, 16)
                    .map_err(|_| SerdeError::msg("invalid occupancy hex"))?,
            );
        }
        let occ = Occupancy { bits, sites };
        if (0..occ.bits.len() * 64).any(|i| i >= sites && occ.bits[i / 64] & (1 << (i % 64)) != 0) {
            return Err(SerdeError::msg("occupancy key sets a bit beyond its sites"));
        }
        Ok(occ)
    }
}

/// The workload placement of an occupancy: occupied sites run the
/// maximum-dI/dt stressmark, free sites idle.
pub fn placement_of_occupancy(occ: &Occupancy) -> Mapping {
    Mapping::from_fn(occ.sites(), |i| {
        if occ.is_set(i) {
            WorkloadKind::MaxDidt
        } else {
            WorkloadKind::Idle
        }
    })
}

/// Anything that can report the worst-case noise of an occupancy: a
/// fully enumerated [`NoiseTable`] or a lazy, engine-backed
/// [`EngineNoiseModel`]. Takes `&mut self` so lazy models can memoize.
pub trait NoiseModel {
    /// Number of sites the model covers.
    fn sites(&self) -> usize;

    /// Worst-case noise (%p2p over all sites) of an occupancy.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] when the occupancy cannot be evaluated (an
    /// uncharacterized table entry, or a failed on-demand solve).
    fn noise_pct_of(&mut self, occ: &Occupancy) -> Result<f64, PdnError>;

    /// Worst-case noise of several occupancies at once, in input order.
    /// The default evaluates serially; engine-backed models override it
    /// to batch the uncached occupancies through the engine's parallel
    /// executor (the noise-aware policy scans every free site of an
    /// arrival through this path, so rack-scale candidate scans run
    /// `VOLTNOISE_THREADS`-wide instead of one solve at a time).
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] when any occupancy cannot be evaluated.
    fn noise_pct_of_batch(&mut self, occs: &[Occupancy]) -> Result<Vec<f64>, PdnError> {
        occs.iter().map(|occ| self.noise_pct_of(occ)).collect()
    }
}

/// Measured worst-case noise for every subset of simultaneously active
/// sites (2^6 = 64 entries at chip scale), in %p2p.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseTable {
    sites: usize,
    entries: HashMap<Occupancy, f64>,
}

impl NoiseTable {
    /// Characterizes all 64 chip occupancies on the testbed through the
    /// shared experiment engine: the solves batch in parallel, dedupe
    /// against anything already cached, and — when a persistent store is
    /// attached — survive a crash mid-characterization.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] if a PDN solve fails.
    pub fn characterize(
        tb: &Testbed,
        stim_freq_hz: f64,
        run_cfg: &NoiseRunConfig,
    ) -> Result<Self, PdnError> {
        NoiseTable::characterize_on(Engine::shared(), tb, stim_freq_hz, run_cfg)
    }

    /// [`NoiseTable::characterize`] on an explicit engine.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] if a PDN solve fails.
    pub fn characterize_on(
        engine: &Engine,
        tb: &Testbed,
        stim_freq_hz: f64,
        run_cfg: &NoiseRunConfig,
    ) -> Result<Self, PdnError> {
        let batch = SimJob::batch(tb.chip());
        let mut occs = Vec::with_capacity(1 << NUM_CORES);
        for mask in 0u64..(1 << NUM_CORES) {
            occs.push(Occupancy::from_mask(mask, NUM_CORES)?);
        }
        let jobs: Vec<SimJob> = occs
            .iter()
            .map(|occ| {
                batch.job(
                    tb.loads_of_mapping(
                        &placement_of_occupancy(occ),
                        stim_freq_hz,
                        Some(SyncSpec::paper_default()),
                    ),
                    run_cfg.clone(),
                )
            })
            .collect();
        let outcomes = engine.run_jobs(&jobs)?;
        let mut entries = HashMap::with_capacity(occs.len());
        for (occ, out) in occs.into_iter().zip(&outcomes) {
            entries.insert(occ, out.max_pct_p2p());
        }
        Ok(NoiseTable {
            sites: NUM_CORES,
            entries,
        })
    }

    /// Builds a table from precomputed entries (tests, serialization).
    ///
    /// # Panics
    ///
    /// Panics unless all `2^sites` occupancies are present.
    pub fn from_entries(sites: usize, entries: HashMap<Occupancy, f64>) -> Self {
        assert_eq!(
            entries.len(),
            1usize << sites,
            "need all 2^{sites} occupancies"
        );
        NoiseTable { sites, entries }
    }

    /// Number of sites the table covers.
    pub fn sites(&self) -> usize {
        self.sites
    }

    /// Worst-case noise of an occupancy.
    ///
    /// # Panics
    ///
    /// Panics for occupancies outside the table.
    pub fn noise_pct(&self, occ: &Occupancy) -> f64 {
        self.entries[occ]
    }
}

impl NoiseModel for NoiseTable {
    fn sites(&self) -> usize {
        self.sites
    }

    fn noise_pct_of(&mut self, occ: &Occupancy) -> Result<f64, PdnError> {
        self.entries
            .get(occ)
            .copied()
            .ok_or_else(|| PdnError::DimensionMismatch {
                expected: self.sites,
                actual: occ.sites(),
            })
    }
}

/// A lazy noise model that solves occupancies on demand through an
/// [`Engine`] and memoizes the answers. The rack-scale replacement for
/// the exhaustive [`NoiseTable`]: a trace replay only ever visits a tiny
/// fraction of the `2^sites` occupancies, and every visit is a
/// content-keyed [`SimJob`] — cached across policies, persisted when a
/// store is attached, and shardable through the fleet.
pub struct EngineNoiseModel<'a> {
    engine: &'a Engine,
    batch: JobBatch,
    sites: usize,
    active: CoreLoad,
    run_cfg: NoiseRunConfig,
    memo: HashMap<Occupancy, f64>,
}

impl<'a> EngineNoiseModel<'a> {
    /// A model over a rack scenario: occupied sites run `active`, free
    /// sites idle.
    pub fn rack(
        engine: &'a Engine,
        rack: Arc<RackScenario>,
        active: CoreLoad,
        run_cfg: NoiseRunConfig,
    ) -> EngineNoiseModel<'a> {
        let sites = rack.num_sites();
        EngineNoiseModel {
            engine,
            batch: SimJob::rack_batch(rack),
            sites,
            active,
            run_cfg,
            memo: HashMap::new(),
        }
    }

    /// A model over a single chip (the 1×1×[`NUM_CORES`] case).
    pub fn chip(
        engine: &'a Engine,
        chip: &crate::chip::Chip,
        active: CoreLoad,
        run_cfg: NoiseRunConfig,
    ) -> EngineNoiseModel<'a> {
        EngineNoiseModel {
            engine,
            batch: SimJob::batch(chip),
            sites: NUM_CORES,
            active,
            run_cfg,
            memo: HashMap::new(),
        }
    }

    /// Distinct occupancies evaluated so far.
    pub fn evaluated(&self) -> usize {
        self.memo.len()
    }
}

impl EngineNoiseModel<'_> {
    fn job_of(&self, occ: &Occupancy) -> SimJob {
        let loads = SiteVec::from_fn(self.sites, |i| {
            if occ.is_set(i) {
                self.active.clone()
            } else {
                CoreLoad::Idle
            }
        });
        self.batch.job(loads, self.run_cfg.clone())
    }
}

impl NoiseModel for EngineNoiseModel<'_> {
    fn sites(&self) -> usize {
        self.sites
    }

    fn noise_pct_of(&mut self, occ: &Occupancy) -> Result<f64, PdnError> {
        if let Some(&n) = self.memo.get(occ) {
            return Ok(n);
        }
        let out = self.engine.run_one(&self.job_of(occ))?;
        let n = out.max_pct_p2p();
        self.memo.insert(occ.clone(), n);
        Ok(n)
    }

    fn noise_pct_of_batch(&mut self, occs: &[Occupancy]) -> Result<Vec<f64>, PdnError> {
        let fresh: Vec<&Occupancy> = {
            let mut seen = std::collections::HashSet::new();
            occs.iter()
                .filter(|occ| !self.memo.contains_key(*occ) && seen.insert(*occ))
                .collect()
        };
        if !fresh.is_empty() {
            let jobs: Vec<SimJob> = fresh.iter().map(|occ| self.job_of(occ)).collect();
            let outcomes = self.engine.run_jobs(&jobs)?;
            for (occ, out) in fresh.into_iter().zip(&outcomes) {
                self.memo.insert(occ.clone(), out.max_pct_p2p());
            }
        }
        Ok(occs.iter().map(|occ| self.memo[occ]).collect())
    }
}

/// A placement policy: choose a free site for an arriving job, given
/// the current occupancy and a noise model to consult.
pub trait PlacementPolicy {
    /// Chooses one of the free sites. Returns `Ok(None)` when the
    /// scenario is full.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] when the noise model fails to evaluate a
    /// candidate occupancy.
    fn place(
        &self,
        occupied: &Occupancy,
        model: &mut dyn NoiseModel,
    ) -> Result<Option<usize>, PdnError>;

    /// Display name.
    fn name(&self) -> &'static str;
}

/// The noise-oblivious policy: lowest-numbered free site.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaivePolicy;

impl PlacementPolicy for NaivePolicy {
    fn place(
        &self,
        occupied: &Occupancy,
        _model: &mut dyn NoiseModel,
    ) -> Result<Option<usize>, PdnError> {
        Ok(occupied.free_sites().next())
    }
    fn name(&self) -> &'static str {
        "naive"
    }
}

/// The noise-aware policy: the free site whose addition minimizes the
/// modeled worst-case noise of the resulting occupancy.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoiseAwarePolicy;

impl NoiseAwarePolicy {
    /// Creates the policy (it consults whatever model the replay holds).
    pub fn new() -> NoiseAwarePolicy {
        NoiseAwarePolicy
    }
}

impl PlacementPolicy for NoiseAwarePolicy {
    fn place(
        &self,
        occupied: &Occupancy,
        model: &mut dyn NoiseModel,
    ) -> Result<Option<usize>, PdnError> {
        let sites: Vec<usize> = occupied.free_sites().collect();
        let candidates: Vec<Occupancy> = sites.iter().map(|&s| occupied.with(s)).collect();
        let noises = model.noise_pct_of_batch(&candidates)?;
        let mut best: Option<(usize, f64)> = None;
        for (&site, &n) in sites.iter().zip(&noises) {
            let better = match best {
                // First minimum wins on ties, matching the historical
                // `min_by(total_cmp)` over ascending site order.
                Some((_, bn)) => n.total_cmp(&bn) == std::cmp::Ordering::Less,
                None => true,
            };
            if better {
                best = Some((site, n));
            }
        }
        Ok(best.map(|(site, _)| site))
    }
    fn name(&self) -> &'static str {
        "noise-aware"
    }
}

/// One job of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Arrival time in abstract ticks.
    pub arrival: u64,
    /// Duration in ticks.
    pub duration: u64,
}

/// Generates a deterministic job trace with roughly `mean_parallelism`
/// jobs in flight.
pub fn synthetic_trace(jobs: usize, mean_parallelism: f64) -> Vec<Job> {
    let duration = 100u64;
    let inter_arrival = (duration as f64 / mean_parallelism.max(0.1)).max(1.0) as u64;
    (0..jobs)
        .map(|k| {
            // Deterministic jitter so occupancy actually fluctuates.
            let wobble = ((k * 7919) % 23) as u64;
            Job {
                arrival: k as u64 * inter_arrival + wobble,
                duration: duration + ((k * 104729) % 41) as u64,
            }
        })
        .collect()
}

/// Outcome of replaying one trace under one policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleOutcome {
    /// Policy name.
    pub policy: String,
    /// Time-weighted mean of the required noise margin (%p2p).
    pub mean_required_pct: f64,
    /// Peak required margin over the run.
    pub peak_required_pct: f64,
    /// Jobs that found no free site on arrival (queued until one freed).
    pub queued_jobs: usize,
}

/// Replays a job trace through a policy, charging at every instant the
/// modeled worst-case noise of the current occupancy.
///
/// # Errors
///
/// Returns [`PdnError`] when the noise model fails to evaluate an
/// occupancy the replay visits.
pub fn replay(
    model: &mut dyn NoiseModel,
    policy: &dyn PlacementPolicy,
    jobs: &[Job],
) -> Result<ScheduleOutcome, PdnError> {
    #[derive(Clone, Copy)]
    struct Running {
        site: usize,
        ends: u64,
    }
    fn advance(
        model: &mut dyn NoiseModel,
        occ: &Occupancy,
        from: u64,
        to: u64,
        weighted: &mut f64,
        peak: &mut f64,
    ) -> Result<(), PdnError> {
        if to > from {
            let n = model.noise_pct_of(occ)?;
            *weighted += n * (to - from) as f64;
            *peak = peak.max(n);
        }
        Ok(())
    }

    let mut jobs: Vec<Job> = jobs.to_vec();
    jobs.sort_by_key(|j| j.arrival);
    let mut running: Vec<Running> = Vec::new();
    let mut queue: Vec<u64> = Vec::new(); // remaining durations of queued jobs
    let mut occ = Occupancy::empty(model.sites());
    let mut t: u64 = 0;
    let mut weighted = 0.0f64;
    let mut peak = 0.0f64;
    let mut queued_jobs = 0usize;
    let mut idx = 0usize;

    let horizon = jobs.last().map(|j| j.arrival).unwrap_or(0) + 10_000;
    while idx < jobs.len() || !running.is_empty() || !queue.is_empty() {
        // Next event: arrival or completion.
        let next_arrival = jobs.get(idx).map(|j| j.arrival).unwrap_or(u64::MAX);
        let next_done = running.iter().map(|r| r.ends).min().unwrap_or(u64::MAX);
        let next = next_arrival.min(next_done);
        if next == u64::MAX || next > horizon {
            break;
        }
        advance(model, &occ, t, next, &mut weighted, &mut peak)?;
        t = next;

        // Completions first (frees sites for same-tick arrivals).
        running.retain(|r| {
            if r.ends <= t {
                occ.clear(r.site);
                false
            } else {
                true
            }
        });
        // Drain the queue into freed sites.
        while let Some(&dur) = queue.first() {
            match policy.place(&occ, model)? {
                Some(site) => {
                    queue.remove(0);
                    occ.set(site);
                    running.push(Running {
                        site,
                        ends: t + dur,
                    });
                }
                None => break,
            }
        }
        // Arrivals at time t.
        while idx < jobs.len() && jobs[idx].arrival <= t {
            let job = jobs[idx];
            idx += 1;
            match policy.place(&occ, model)? {
                Some(site) => {
                    occ.set(site);
                    running.push(Running {
                        site,
                        ends: t + job.duration,
                    });
                }
                None => {
                    queued_jobs += 1;
                    queue.push(job.duration);
                }
            }
        }
    }
    advance(model, &occ, t, t + 1, &mut weighted, &mut peak)?;

    Ok(ScheduleOutcome {
        policy: policy.name().to_string(),
        mean_required_pct: weighted / (t + 1) as f64,
        peak_required_pct: peak,
        queued_jobs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn occ(mask: u64) -> Occupancy {
        Occupancy::from_mask(mask, NUM_CORES).unwrap()
    }

    /// A synthetic table where same-row packing is penalized, mimicking
    /// the measured chip.
    fn synthetic_table() -> NoiseTable {
        let mut entries = HashMap::new();
        for mask in 0u64..64 {
            let count = mask.count_ones() as f64;
            let even: u32 = (0..3)
                .map(|k| (mask >> (2 * k)) & 1)
                .map(|b| b as u32)
                .sum();
            let odd = mask.count_ones() - even;
            // Base grows with count; same-row concentration adds penalty.
            let imbalance = (even as f64 - odd as f64).abs();
            entries.insert(occ(mask), 5.0 + 8.0 * count + 3.0 * imbalance);
        }
        NoiseTable::from_entries(NUM_CORES, entries)
    }

    #[test]
    fn masks_beyond_the_site_count_are_typed_errors() {
        // The old u8 mask silently wrapped `1 << 8`; now it's an error.
        let err = Occupancy::from_mask(1 << 8, NUM_CORES).unwrap_err();
        assert!(matches!(
            err,
            PdnError::DimensionMismatch {
                expected: 6,
                actual: 9
            }
        ));
        assert!(Occupancy::from_mask(0b111111, NUM_CORES).is_ok());
    }

    #[test]
    fn occupancy_scales_past_eight_and_past_sixty_four_sites() {
        // Sites 8+ were unrepresentable in the u8 mask; sites 64+ need
        // the second word. Both must round-trip exactly.
        let mut big = Occupancy::empty(130);
        for site in [0, 8, 9, 63, 64, 127, 129] {
            big.set(site);
        }
        assert_eq!(big.count(), 7);
        assert!(big.is_set(64) && big.is_set(129) && !big.is_set(128));
        big.clear(64);
        assert!(!big.is_set(64));
        assert_eq!(big.free_sites().count(), 130 - 6);
        let key = big.to_key();
        let back = Occupancy::from_key(&key).unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn table_serialization_round_trips() {
        let table = synthetic_table();
        let json = serde_json::to_string(&table).unwrap();
        let back: NoiseTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back, table);
        assert_eq!(back.noise_pct(&occ(0b101)), table.noise_pct(&occ(0b101)));
    }

    #[test]
    fn naive_policy_fills_in_order() {
        let mut table = synthetic_table();
        let p = NaivePolicy;
        assert_eq!(p.place(&occ(0b000000), &mut table).unwrap(), Some(0));
        assert_eq!(p.place(&occ(0b000101), &mut table).unwrap(), Some(1));
        assert_eq!(p.place(&occ(0b111111), &mut table).unwrap(), None);
    }

    #[test]
    fn noise_aware_policy_balances_rows() {
        let mut table = synthetic_table();
        let p = NoiseAwarePolicy;
        // Core 0 (even row) occupied: the aware policy picks an odd-row
        // core next to minimize imbalance.
        let next = p.place(&occ(0b000001), &mut table).unwrap().unwrap();
        assert!(next % 2 == 1, "picked core {next}");
    }

    #[test]
    fn replay_charges_lower_margin_for_aware_policy() {
        let mut table = synthetic_table();
        let trace = synthetic_trace(60, 2.5);
        let naive = replay(&mut table, &NaivePolicy, &trace).unwrap();
        let aware = replay(&mut table, &NoiseAwarePolicy, &trace).unwrap();
        assert!(
            aware.mean_required_pct <= naive.mean_required_pct,
            "aware {} vs naive {}",
            aware.mean_required_pct,
            naive.mean_required_pct
        );
        assert!(aware.peak_required_pct <= naive.peak_required_pct + 1e-9);
    }

    #[test]
    fn full_chip_queues_jobs() {
        let mut table = synthetic_table();
        // 12 simultaneous arrivals on 6 cores: 6 must queue.
        let trace: Vec<Job> = (0..12)
            .map(|_| Job {
                arrival: 0,
                duration: 50,
            })
            .collect();
        let out = replay(&mut table, &NaivePolicy, &trace).unwrap();
        assert_eq!(out.queued_jobs, 6);
    }

    #[test]
    fn measured_table_smoke() {
        let tb = Testbed::fast();
        // Characterize only via the public API with a tiny window; the
        // full 64-mask characterization runs in the bench harness.
        let run_cfg = NoiseRunConfig {
            window_s: Some(20e-6),
            ..NoiseRunConfig::default()
        };
        let mut table = NoiseTable::characterize(tb, 2.5e6, &run_cfg).unwrap();
        assert!(table.noise_pct(&occ(0b111111)) > table.noise_pct(&occ(0b000001)));
        assert!(table.noise_pct(&occ(0)) < 10.0);
        // The aware policy on the real table avoids pairing row-mates
        // early: starting from {0}, it avoids cores 2 and 4.
        let p = NoiseAwarePolicy;
        let next = p.place(&occ(0b000001), &mut table).unwrap().unwrap();
        assert!(next != 2 && next != 4, "picked same-row core {next}");
    }

    #[test]
    fn characterization_memoizes_through_the_engine() {
        let tb = Testbed::fast();
        let engine = Engine::new();
        let run_cfg = NoiseRunConfig {
            window_s: Some(8e-6),
            ..NoiseRunConfig::default()
        };
        let first = NoiseTable::characterize_on(&engine, tb, 2.5e6, &run_cfg).unwrap();
        let solves_after_first = engine.stats().solves;
        assert_eq!(solves_after_first, 64);
        // Re-characterizing (e.g. another policy rebuilding its table)
        // answers every occupancy from the cache.
        let second = NoiseTable::characterize_on(&engine, tb, 2.5e6, &run_cfg).unwrap();
        assert_eq!(engine.stats().solves, solves_after_first);
        assert_eq!(first, second);
    }
}
