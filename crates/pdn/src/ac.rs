//! AC (phasor) analysis: frequency-domain impedance profiles.
//!
//! This reproduces the package-characterization flow the paper shows in
//! Figure 7b: sweep a sinusoidal unit current injected at an observation
//! port (with the DC sources shorted) and report the complex impedance
//! `Z(f) = V / I` seen at that port, or the transfer impedance to another
//! node.

use crate::complex::Complex;
use crate::error::PdnError;
use crate::linalg::Matrix;
use crate::netlist::{Element, Netlist, NodeId};

/// One point of an impedance sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImpedancePoint {
    /// Frequency in hertz.
    pub freq_hz: f64,
    /// Complex impedance at that frequency.
    pub z: Complex,
}

impl ImpedancePoint {
    /// Impedance magnitude in ohms.
    pub fn magnitude(&self) -> f64 {
        self.z.abs()
    }
}

/// Frequency-domain analyzer over a fixed netlist.
///
/// # Examples
///
/// ```
/// use voltnoise_pdn::ac::AcAnalysis;
/// use voltnoise_pdn::netlist::{Netlist, NodeId};
///
/// # fn main() -> Result<(), voltnoise_pdn::PdnError> {
/// let mut nl = Netlist::new();
/// let die = nl.add_node("die");
/// nl.add_resistor(die, NodeId::GROUND, 0.001)?;
/// let ac = AcAnalysis::new(&nl);
/// let z = ac.impedance_at(die, 1e6)?;
/// assert!((z.abs() - 0.001).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AcAnalysis {
    netlist: Netlist,
}

impl AcAnalysis {
    /// Creates an analyzer for a snapshot of the netlist.
    pub fn new(netlist: &Netlist) -> Self {
        AcAnalysis {
            netlist: netlist.clone(),
        }
    }

    fn solve_with_injection(&self, inject: NodeId, freq_hz: f64) -> Result<Vec<Complex>, PdnError> {
        if !(freq_hz.is_finite() && freq_hz > 0.0) {
            return Err(PdnError::InvalidTimebase {
                reason: format!("AC analysis requires positive finite frequency, got {freq_hz}"),
            });
        }
        let n = self.netlist.system_size();
        let n_nodes = self.netlist.node_count() - 1;
        let omega = 2.0 * std::f64::consts::PI * freq_hz;
        let mut g = Matrix::<Complex>::zeros(n, n);
        let mut rhs = vec![Complex::ZERO; n];

        let stamp_adm =
            |m: &mut Matrix<Complex>, a: Option<usize>, b: Option<usize>, y: Complex| {
                if let Some(ia) = a {
                    m.stamp(ia, ia, y);
                }
                if let Some(ib) = b {
                    m.stamp(ib, ib, y);
                }
                if let (Some(ia), Some(ib)) = (a, b) {
                    m.stamp(ia, ib, -y);
                    m.stamp(ib, ia, -y);
                }
            };

        let mut vrow = n_nodes;
        for el in self.netlist.elements() {
            match *el {
                Element::Resistor { a, b, ohms } => stamp_adm(
                    &mut g,
                    a.unknown_index(),
                    b.unknown_index(),
                    Complex::from_real(1.0 / ohms),
                ),
                Element::Capacitor { a, b, farads } => stamp_adm(
                    &mut g,
                    a.unknown_index(),
                    b.unknown_index(),
                    Complex::new(0.0, omega * farads),
                ),
                Element::Inductor { a, b, henries } => stamp_adm(
                    &mut g,
                    a.unknown_index(),
                    b.unknown_index(),
                    Complex::new(0.0, -1.0 / (omega * henries)),
                ),
                Element::VoltageSource { plus, minus, .. } => {
                    // DC sources are AC shorts: constrain v(plus)-v(minus)=0.
                    if let Some(ip) = plus.unknown_index() {
                        g.stamp(ip, vrow, Complex::ONE);
                        g.stamp(vrow, ip, Complex::ONE);
                    }
                    if let Some(im) = minus.unknown_index() {
                        g.stamp(im, vrow, -Complex::ONE);
                        g.stamp(vrow, im, -Complex::ONE);
                    }
                    vrow += 1;
                }
                Element::CurrentSource { .. } => {
                    // Load sources are small-signal open circuits.
                }
            }
        }

        // Unit sinusoidal current drawn out of the injection node (a load).
        if let Some(idx) = inject.unknown_index() {
            rhs[idx] = -Complex::ONE;
        } else {
            return Err(PdnError::UnknownNode { node: 0 });
        }
        g.lu()?.solve(&rhs)
    }

    /// Impedance magnitude/phase seen *into the PDN* at `node` for a unit
    /// load current at `freq_hz`.
    ///
    /// The sign convention reports the droop impedance: a positive real
    /// part means the node voltage drops when load current is drawn.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] for non-positive frequency, ground injection,
    /// or a singular network.
    pub fn impedance_at(&self, node: NodeId, freq_hz: f64) -> Result<Complex, PdnError> {
        let sol = self.solve_with_injection(node, freq_hz)?;
        let idx = node
            .unknown_index()
            .ok_or(PdnError::UnknownNode { node: 0 })?;
        // The load draws +1 A, so the node voltage phasor is -Z.
        Ok(-sol[idx])
    }

    /// Transfer impedance: voltage response at `observe` per unit load
    /// current injected at `inject`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AcAnalysis::impedance_at`].
    pub fn transfer_impedance(
        &self,
        inject: NodeId,
        observe: NodeId,
        freq_hz: f64,
    ) -> Result<Complex, PdnError> {
        let sol = self.solve_with_injection(inject, freq_hz)?;
        let idx = observe
            .unknown_index()
            .ok_or(PdnError::UnknownNode { node: 0 })?;
        Ok(-sol[idx])
    }

    /// Sweeps the self-impedance at `node` over the given frequencies.
    ///
    /// # Errors
    ///
    /// Fails on the first frequency that errors.
    pub fn sweep(&self, node: NodeId, freqs: &[f64]) -> Result<Vec<ImpedancePoint>, PdnError> {
        freqs
            .iter()
            .map(|&f| {
                Ok(ImpedancePoint {
                    freq_hz: f,
                    z: self.impedance_at(node, f)?,
                })
            })
            .collect()
    }
}

/// Builds `count` log-spaced frequencies between `f_lo` and `f_hi`
/// (inclusive).
///
/// # Errors
///
/// Returns [`PdnError::InvalidTimebase`] unless `0 < f_lo < f_hi` (both
/// finite) and `count >= 2`.
///
/// # Examples
///
/// ```
/// let f = voltnoise_pdn::ac::log_space(1e3, 1e6, 4).unwrap();
/// assert_eq!(f.len(), 4);
/// assert!((f[0] - 1e3).abs() < 1e-9);
/// assert!((f[3] - 1e6).abs() < 1e-3);
/// ```
pub fn log_space(f_lo: f64, f_hi: f64, count: usize) -> Result<Vec<f64>, PdnError> {
    if !(f_lo.is_finite() && f_hi.is_finite() && f_lo > 0.0 && f_hi > f_lo) {
        return Err(PdnError::InvalidTimebase {
            reason: format!("log_space requires 0 < f_lo < f_hi, got [{f_lo}, {f_hi}]"),
        });
    }
    if count < 2 {
        return Err(PdnError::InvalidTimebase {
            reason: format!("log_space requires count >= 2, got {count}"),
        });
    }
    let l0 = f_lo.ln();
    let l1 = f_hi.ln();
    Ok((0..count)
        .map(|i| (l0 + (l1 - l0) * i as f64 / (count - 1) as f64).exp())
        .collect())
}

/// Finds local maxima ("resonance peaks") of an impedance sweep, returning
/// `(freq_hz, magnitude)` pairs sorted by descending magnitude.
pub fn find_peaks(profile: &[ImpedancePoint]) -> Vec<(f64, f64)> {
    let mut peaks = Vec::new();
    for i in 1..profile.len().saturating_sub(1) {
        let m = profile[i].magnitude();
        if m > profile[i - 1].magnitude() && m >= profile[i + 1].magnitude() {
            peaks.push((profile[i].freq_hz, m));
        }
    }
    peaks.sort_by(|a, b| b.1.total_cmp(&a.1));
    peaks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resistor_impedance_is_flat() {
        let mut nl = Netlist::new();
        let die = nl.add_node("die");
        nl.add_resistor(die, NodeId::GROUND, 0.002).unwrap();
        let ac = AcAnalysis::new(&nl);
        for f in [1e3, 1e5, 1e7] {
            let z = ac.impedance_at(die, f).unwrap();
            assert!((z.abs() - 0.002).abs() < 1e-12);
            assert!(z.re > 0.0, "droop sign convention");
        }
    }

    #[test]
    fn capacitor_impedance_falls_with_frequency() {
        let mut nl = Netlist::new();
        let die = nl.add_node("die");
        nl.add_resistor(die, NodeId::GROUND, 1e6).unwrap(); // DC path
        nl.add_capacitor(die, NodeId::GROUND, 1e-6).unwrap();
        let ac = AcAnalysis::new(&nl);
        let z1 = ac.impedance_at(die, 1e4).unwrap().abs();
        let z2 = ac.impedance_at(die, 1e5).unwrap().abs();
        assert!((z1 / z2 - 10.0).abs() < 0.01, "z1={z1} z2={z2}");
        // |Z| = 1/(2*pi*f*C)
        let expected = 1.0 / (2.0 * std::f64::consts::PI * 1e4 * 1e-6);
        assert!((z1 - expected).abs() / expected < 1e-3);
    }

    #[test]
    fn parallel_rlc_peaks_at_resonance() {
        // Source inductance vs die capacitance: anti-resonance peak.
        let l: f64 = 1e-9;
        let c: f64 = 1e-6;
        let f_res = 1.0 / (2.0 * std::f64::consts::PI * (l * c).sqrt());
        let mut nl = Netlist::new();
        let vdd = nl.add_node("vdd");
        nl.add_voltage_source(vdd, NodeId::GROUND, 1.0).unwrap();
        let die = nl.add_node("die");
        nl.add_series_rl(vdd, die, 1e-4, l).unwrap();
        nl.add_capacitor(die, NodeId::GROUND, c).unwrap();

        let ac = AcAnalysis::new(&nl);
        let freqs = log_space(1e5, 1e8, 200).unwrap();
        let profile = ac.sweep(die, &freqs).unwrap();
        let peaks = find_peaks(&profile);
        assert!(!peaks.is_empty());
        let (f_peak, _) = peaks[0];
        assert!(
            (f_peak - f_res).abs() / f_res < 0.1,
            "peak {f_peak:.3e} vs resonance {f_res:.3e}"
        );
    }

    #[test]
    fn transfer_impedance_attenuates_across_resistor() {
        let mut nl = Netlist::new();
        let a = nl.add_node("a");
        let b = nl.add_node("b");
        nl.add_resistor(a, NodeId::GROUND, 0.01).unwrap();
        nl.add_resistor(b, NodeId::GROUND, 0.01).unwrap();
        nl.add_resistor(a, b, 0.01).unwrap();
        let ac = AcAnalysis::new(&nl);
        let z_self = ac.impedance_at(a, 1e6).unwrap().abs();
        let z_xfer = ac.transfer_impedance(a, b, 1e6).unwrap().abs();
        assert!(z_xfer < z_self);
        assert!(z_xfer > 0.0);
    }

    #[test]
    fn rejects_bad_frequency() {
        let mut nl = Netlist::new();
        let die = nl.add_node("die");
        nl.add_resistor(die, NodeId::GROUND, 1.0).unwrap();
        let ac = AcAnalysis::new(&nl);
        assert!(ac.impedance_at(die, 0.0).is_err());
        assert!(ac.impedance_at(die, -5.0).is_err());
        assert!(ac.impedance_at(die, f64::NAN).is_err());
    }

    #[test]
    fn log_space_is_monotonic() {
        let f = log_space(1e3, 1e8, 50).unwrap();
        assert!(f.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn log_space_rejects_bad_bounds() {
        assert!(log_space(0.0, 1e6, 10).is_err());
        assert!(log_space(1e6, 1e3, 10).is_err());
        assert!(log_space(f64::NAN, 1e6, 10).is_err());
        assert!(log_space(1e3, f64::INFINITY, 10).is_err());
        assert!(log_space(1e3, 1e6, 1).is_err());
    }

    #[test]
    fn find_peaks_orders_by_magnitude() {
        let profile: Vec<ImpedancePoint> = [1.0, 3.0, 1.0, 5.0, 1.0]
            .iter()
            .enumerate()
            .map(|(i, &m)| ImpedancePoint {
                freq_hz: (i + 1) as f64,
                z: Complex::from_real(m),
            })
            .collect();
        let peaks = find_peaks(&profile);
        assert_eq!(peaks.len(), 2);
        assert_eq!(peaks[0].0, 4.0);
        assert_eq!(peaks[1].0, 2.0);
    }
}
