//! The assembled experimental platform: ISA, EPI profile, searched
//! sequences, and a chip instance — everything §III of the paper has on
//! the bench.

use crate::chip::{Chip, ChipConfig};
use crate::noise::CoreLoad;
use crate::site::SiteVec;
use crate::workload::WorkloadKind;
use std::sync::OnceLock;
use voltnoise_pdn::PdnError;
use voltnoise_stressmark::{
    compile, find_max_power_sequence, find_sequence_with_power, min_power_sequence,
    CompiledStressmark, SearchConfig, SearchOutcome, SequenceEval, StressmarkSpec, SyncSpec,
};
use voltnoise_uarch::epi::EpiProfile;
use voltnoise_uarch::isa::Isa;
use voltnoise_uarch::pipeline::CoreConfig;

/// A ready-to-measure platform: core model, profiled ISA, searched
/// max/min/medium sequences and a chip with instrumentation.
///
/// Building one runs the EPI profiling and the sequence search, which is
/// the expensive part; the cached [`Testbed::fast`] and
/// [`Testbed::shared`] constructors amortize it across tests and
/// experiments.
#[derive(Debug)]
pub struct Testbed {
    isa: Isa,
    core: CoreConfig,
    profile: EpiProfile,
    search: SearchOutcome,
    min_eval: SequenceEval,
    med_eval: SequenceEval,
    chip: Chip,
}

impl Testbed {
    /// Builds a testbed with explicit search and chip configurations.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] if the chip parameters are invalid.
    pub fn build(search_cfg: &SearchConfig, chip_cfg: &ChipConfig) -> Result<Testbed, PdnError> {
        let isa = Isa::zlike();
        let core = chip_cfg.core.clone();
        let profile = EpiProfile::generate(&isa, &core);
        let search = find_max_power_sequence(&isa, &core, &profile, search_cfg);
        let min_eval = min_power_sequence(&isa, &core, &profile);
        let target = (search.best.power_w + min_eval.power_w) / 2.0;
        let med_eval = find_sequence_with_power(&isa, &core, &search.best, target, 200);
        let chip = Chip::new(chip_cfg)?;
        Ok(Testbed {
            isa,
            core,
            profile,
            search,
            min_eval,
            med_eval,
            chip,
        })
    }

    /// Full-fidelity testbed (paper-sized search funnel).
    ///
    /// # Panics
    ///
    /// Never panics: default parameters are valid.
    // Sanctioned expect: the default-config build is validated by the
    // test suite, and an infallible constructor is the documented
    // contract of this method.
    #[allow(clippy::expect_used)]
    pub fn new() -> Testbed {
        Testbed::build(&SearchConfig::default(), &ChipConfig::default())
            .expect("default chip parameters are valid")
    }

    /// A cached reduced-search testbed for tests: the funnel keeps 60
    /// sequences instead of 1000, which preserves the winner's character
    /// at a fraction of the cost.
    // Sanctioned expect: same infallible-constructor contract as `new`.
    #[allow(clippy::expect_used)]
    pub fn fast() -> &'static Testbed {
        static CELL: OnceLock<Testbed> = OnceLock::new();
        CELL.get_or_init(|| {
            Testbed::build(
                &SearchConfig {
                    ipc_keep: 60,
                    eval_iterations: 120,
                },
                &ChipConfig::default(),
            )
            .expect("default chip parameters are valid")
        })
    }

    /// A cached full-fidelity testbed shared by experiment drivers.
    pub fn shared() -> &'static Testbed {
        static CELL: OnceLock<Testbed> = OnceLock::new();
        CELL.get_or_init(Testbed::new)
    }

    /// The ISA under test.
    pub fn isa(&self) -> &Isa {
        &self.isa
    }

    /// The core configuration.
    pub fn core(&self) -> &CoreConfig {
        &self.core
    }

    /// The EPI profile (Table I source).
    pub fn profile(&self) -> &EpiProfile {
        &self.profile
    }

    /// The full sequence-search outcome (funnel counts, winner,
    /// runners-up).
    pub fn search(&self) -> &SearchOutcome {
        &self.search
    }

    /// The maximum-power sequence.
    pub fn max_sequence(&self) -> &SequenceEval {
        &self.search.best
    }

    /// The minimum-power sequence.
    pub fn min_sequence(&self) -> &SequenceEval {
        &self.min_eval
    }

    /// The medium-power sequence (average of max and min).
    pub fn medium_sequence(&self) -> &SequenceEval {
        &self.med_eval
    }

    /// The chip instance.
    pub fn chip(&self) -> &Chip {
        &self.chip
    }

    /// Replaces the chip (e.g. a different process-variation seed or an
    /// undervolted instance).
    pub fn with_chip(mut self, chip: Chip) -> Testbed {
        self.chip = chip;
        self
    }

    fn compile_stressmark(
        &self,
        name: &str,
        high: &SequenceEval,
        stim_freq_hz: f64,
        sync: Option<SyncSpec>,
    ) -> CompiledStressmark {
        let spec = StressmarkSpec {
            name: name.to_string(),
            high_body: high.body.clone(),
            low_body: self.min_eval.body.clone(),
            stim_freq_hz,
            duty: 0.5,
            sync,
        };
        #[allow(clippy::expect_used)] // documented panic contract (see max_stressmark)
        compile(&self.isa, &self.core, spec)
            .expect("searched sequences compile at paper frequencies")
    }

    /// The maximum dI/dt stressmark at a stimulus frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is unrealizable for the searched sequences
    /// (beyond hundreds of MHz).
    pub fn max_stressmark(&self, stim_freq_hz: f64, sync: Option<SyncSpec>) -> CompiledStressmark {
        self.compile_stressmark("max_didt", &self.search.best, stim_freq_hz, sync)
    }

    /// The medium dI/dt stressmark (half the ΔI of the maximum).
    ///
    /// # Panics
    ///
    /// Panics if the frequency is unrealizable.
    pub fn medium_stressmark(
        &self,
        stim_freq_hz: f64,
        sync: Option<SyncSpec>,
    ) -> CompiledStressmark {
        self.compile_stressmark("medium_didt", &self.med_eval, stim_freq_hz, sync)
    }

    /// The [`CoreLoad`] of a workload kind.
    pub fn load_of(
        &self,
        kind: WorkloadKind,
        stim_freq_hz: f64,
        sync: Option<SyncSpec>,
    ) -> CoreLoad {
        match kind {
            WorkloadKind::Idle => CoreLoad::Idle,
            WorkloadKind::MediumDidt => {
                CoreLoad::Stressmark(self.medium_stressmark(stim_freq_hz, sync))
            }
            WorkloadKind::MaxDidt => CoreLoad::Stressmark(self.max_stressmark(stim_freq_hz, sync)),
        }
    }

    /// Expands a workload placement into per-site loads (any site
    /// count: a chip mapping yields six loads, a rack placement one
    /// load per rack site).
    pub fn loads_of_mapping(
        &self,
        mapping: &[WorkloadKind],
        stim_freq_hz: f64,
        sync: Option<SyncSpec>,
    ) -> SiteVec<CoreLoad> {
        SiteVec::from_fn(mapping.len(), |i| {
            self.load_of(mapping[i], stim_freq_hz, sync)
        })
    }
}

impl Default for Testbed {
    fn default() -> Self {
        Testbed::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_testbed_orders_sequence_powers() {
        let tb = Testbed::fast();
        let max = tb.max_sequence().power_w;
        let med = tb.medium_sequence().power_w;
        let min = tb.min_sequence().power_w;
        assert!(max > med && med > min, "max {max} med {med} min {min}");
        let target = (max + min) / 2.0;
        assert!(
            (med - target).abs() / target < 0.08,
            "medium {med} vs target {target}"
        );
    }

    #[test]
    fn medium_stressmark_has_half_delta_i() {
        let tb = Testbed::fast();
        let max = tb.max_stressmark(2e6, None);
        let med = tb.medium_stressmark(2e6, None);
        let ratio = med.delta_i() / max.delta_i();
        assert!((ratio - 0.5).abs() < 0.12, "ratio = {ratio}");
    }

    #[test]
    fn loads_of_mapping_matches_kinds() {
        let tb = Testbed::fast();
        let mapping = [
            WorkloadKind::MaxDidt,
            WorkloadKind::Idle,
            WorkloadKind::MediumDidt,
            WorkloadKind::Idle,
            WorkloadKind::Idle,
            WorkloadKind::Idle,
        ];
        let loads = tb.loads_of_mapping(&mapping, 2e6, None);
        assert!(matches!(loads[0], CoreLoad::Stressmark(_)));
        assert!(matches!(loads[1], CoreLoad::Idle));
        assert!(matches!(loads[2], CoreLoad::Stressmark(_)));
    }

    #[test]
    fn stressmarks_compile_across_paper_frequency_range() {
        let tb = Testbed::fast();
        for f in [1.0, 1e3, 35e3, 2.5e6, 15e6, 100e6] {
            let sm = tb.max_stressmark(f, None);
            assert!(sm.high_reps >= 1, "no reps at {f} Hz");
        }
    }
}
