//! Rack-scale scenarios: a population of process-variated chips on a
//! shared supply spine, run through the same noise kernel, engine and
//! store as single chips.
//!
//! A [`RackScenario`] packages a [`voltnoise_pdn::RackPdn`] (N drawers ×
//! M chips, each chip's [`voltnoise_pdn::PdnParams`] independently
//! perturbed by a seeded [`VariationSpec`]) together with one variated
//! [`Skitter`] per site. Its electrical view plugs straight into the
//! topology-blind kernel in [`crate::noise`], and its content signature
//! keys rack jobs through [`crate::engine::SimJob`] — rack solves
//! memoize, persist and shard through the existing machinery unchanged.
//!
//! The degenerate rack — one drawer, one chip, zero variation — is
//! electrically bitwise-identical to the chip it was built from (the
//! build sequences match element for element; see the hierarchy
//! degeneracy tests), which is what licenses treating every chip-scale
//! experiment as the 1×1×[`NUM_CORES`] special case.

use crate::chip::{Chip, HfNoiseParams};
use crate::noise::{NoiseOutcome, NoiseRunConfig, ScenarioView, SolveTelemetry};
use crate::site::{Site, SiteSpace, SiteVec};
use std::sync::Arc;
use voltnoise_measure::skitter::Skitter;
use voltnoise_pdn::topology::{DrawerParams, RackParams, RackPdn, VariationSpec, NUM_CORES};
use voltnoise_pdn::PdnError;

/// A rack of process-variated chips, ready to solve: the site-indexed
/// generalization of [`Chip`].
#[derive(Debug, Clone)]
pub struct RackScenario {
    space: SiteSpace,
    params: RackParams,
    variation: VariationSpec,
    pdn: RackPdn,
    /// Per-site skitters in site-ordinal order, each with its chip's
    /// variated sensitivity applied.
    skitters: Vec<Skitter>,
    hf: HfNoiseParams,
    v_nom: f64,
    idle_current: f64,
    signature: Arc<str>,
}

impl RackScenario {
    /// Builds a rack of `drawers × chips_per_drawer` copies of `base`,
    /// each chip's PDN parameters and skitter sensitivities perturbed by
    /// `variation` (pass [`VariationSpec::none`] for an unvaried rack).
    /// Spine electricals come from the default [`RackParams`] /
    /// [`DrawerParams`]; use [`RackScenario::build_with_params`] to
    /// override them.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] when the topology is empty or an electrical
    /// value is invalid.
    pub fn build(
        base: &Chip,
        drawers: usize,
        chips_per_drawer: usize,
        variation: VariationSpec,
    ) -> Result<RackScenario, PdnError> {
        let params = RackParams {
            drawers,
            drawer: DrawerParams {
                chips: chips_per_drawer,
                chip: base.pdn().params().clone(),
                ..DrawerParams::default()
            },
            ..RackParams::default()
        };
        RackScenario::build_with_params(base, params, variation)
    }

    /// [`RackScenario::build`] with explicit rack parameters. The chip
    /// template inside `params.drawer.chip` is overwritten with `base`'s
    /// *realized* PDN parameters (including its seeded on-die grid
    /// variation), so the chip the rack replicates is exactly the chip
    /// the caller measured.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] when the topology is empty or an electrical
    /// value is invalid.
    pub fn build_with_params(
        base: &Chip,
        mut params: RackParams,
        variation: VariationSpec,
    ) -> Result<RackScenario, PdnError> {
        params.drawer.chip = base.pdn().params().clone();
        let space = SiteSpace::rack(params.drawers, params.drawer.chips);
        let base_params = &params.drawer.chip;
        let mut chip_params = Vec::with_capacity(space.num_chips());
        for d in 0..space.drawers() {
            for c in 0..space.chips_per_drawer() {
                chip_params.push(variation.chip_pdn_params(base_params, d, c));
            }
        }
        let pdn = RackPdn::build_varied(&params, &chip_params)?;

        let mut skitters = Vec::with_capacity(space.num_sites());
        for d in 0..space.drawers() {
            for c in 0..space.chips_per_drawer() {
                let sens = variation.skitter_variation(d, c);
                for (core, mult) in sens.iter().enumerate() {
                    let mut sc = *base.skitter(core).config();
                    // ×1.0 under a zero spec: bitwise the base skitter.
                    sc.sensitivity_variation *= mult;
                    skitters.push(Skitter::new(sc));
                }
            }
        }

        let signature = rack_signature(base, &params, &variation)?;
        Ok(RackScenario {
            space,
            params,
            variation,
            pdn,
            skitters,
            hf: base.config().hf,
            v_nom: base.v_nom(),
            idle_current: base.config().core.static_power_w / base.config().core.v_nom,
            signature,
        })
    }

    /// The rack's site space.
    pub fn space(&self) -> &SiteSpace {
        &self.space
    }

    /// Total number of sites (= load slots of a rack job).
    pub fn num_sites(&self) -> usize {
        self.space.num_sites()
    }

    /// The rack parameters the PDN was built from.
    pub fn params(&self) -> &RackParams {
        &self.params
    }

    /// The variation spec the population was drawn from.
    pub fn variation(&self) -> &VariationSpec {
        &self.variation
    }

    /// The built rack PDN.
    pub fn pdn(&self) -> &RackPdn {
        &self.pdn
    }

    /// The skitter of a site.
    ///
    /// # Panics
    ///
    /// Panics when `site` lies outside the rack's space.
    pub fn skitter(&self, site: Site) -> &Skitter {
        &self.skitters[self.space.ordinal(site)]
    }

    /// The rack's content signature: rack params + variation + the base
    /// chip's full signature. Two racks with equal signatures produce
    /// bitwise-identical outcomes, so this is the `chip_sig` rack jobs
    /// carry in their [`crate::engine::JobKey`].
    pub fn signature(&self) -> Arc<str> {
        self.signature.clone()
    }

    /// The kernel's electrical view of this rack.
    pub(crate) fn view(&self) -> ScenarioView<'_> {
        ScenarioView {
            netlist: self.pdn.netlist(),
            core_nodes: self
                .space
                .sites()
                .map(|s| self.pdn.core_node(s.drawer, s.chip, s.core))
                .collect(),
            skitters: self.skitters.iter().collect(),
            hf: &self.hf,
            v_nom: self.v_nom,
            idle_current: self.idle_current,
            cores_per_chip: NUM_CORES,
        }
    }
}

/// Content signature of a rack scenario (see [`RackScenario::signature`]).
fn rack_signature(
    base: &Chip,
    params: &RackParams,
    variation: &VariationSpec,
) -> Result<Arc<str>, PdnError> {
    let render = |what: &str, r: Result<String, serde_json::Error>| {
        r.map_err(|e| PdnError::InvalidTimebase {
            reason: format!("{what} failed to serialize: {e}"),
        })
    };
    let base_sig = crate::engine::try_chip_signature(base)?;
    let params_json = render("rack params", serde_json::to_string(params))?;
    let variation_json = render("variation spec", serde_json::to_string(variation))?;
    Ok(Arc::from(format!(
        "rack/1|{params_json}|{variation_json}|{base_sig}"
    )))
}

/// Runs one rack-scale noise experiment: one transient solve of the
/// whole rack netlist under per-site `loads` (site-ordinal order, one
/// per site), skitter readings per site.
///
/// # Errors
///
/// Returns [`PdnError::DimensionMismatch`] when the load count does not
/// match the rack's site count, or a [`PdnError`] when the solve fails.
pub fn run_rack_noise(
    rack: &RackScenario,
    loads: &[crate::noise::CoreLoad],
    cfg: &NoiseRunConfig,
) -> Result<NoiseOutcome, PdnError> {
    run_rack_noise_instrumented(rack, loads, cfg).map(|(outcome, _)| outcome)
}

/// [`run_rack_noise`] plus the solve's telemetry (the rack analogue of
/// [`crate::noise::run_noise_instrumented`]).
///
/// # Errors
///
/// Returns [`PdnError`] when the solve fails.
pub fn run_rack_noise_instrumented(
    rack: &RackScenario,
    loads: &[crate::noise::CoreLoad],
    cfg: &NoiseRunConfig,
) -> Result<(NoiseOutcome, SolveTelemetry), PdnError> {
    crate::noise::run_view_noise_instrumented(&rack.view(), loads, cfg)
}

/// Builds the idle load set of a rack (every site idle).
pub fn idle_loads(rack: &RackScenario) -> SiteVec<crate::noise::CoreLoad> {
    SiteVec::from_elem(crate::noise::CoreLoad::Idle, rack.num_sites())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::{run_noise, CoreLoad};
    use crate::testbed::Testbed;

    #[test]
    fn degenerate_rack_reproduces_chip_noise_byte_identically() {
        let tb = Testbed::fast();
        let rack = RackScenario::build(tb.chip(), 1, 1, VariationSpec::none()).unwrap();
        assert_eq!(rack.num_sites(), NUM_CORES);
        let sm = tb.max_stressmark(2.5e6, Some(voltnoise_stressmark::SyncSpec::paper_default()));
        let loads: Vec<CoreLoad> = (0..NUM_CORES)
            .map(|_| CoreLoad::Stressmark(sm.clone()))
            .collect();
        let cfg = NoiseRunConfig {
            window_s: Some(20e-6),
            ..NoiseRunConfig::default()
        };
        let chip_out = run_noise(tb.chip(), &loads, &cfg).unwrap();
        let rack_out = run_rack_noise(&rack, &loads, &cfg).unwrap();
        assert_eq!(
            serde_json::to_string(&chip_out).unwrap(),
            serde_json::to_string(&rack_out).unwrap(),
            "1×1 zero-variation rack must be the chip, bit for bit"
        );
    }

    #[test]
    fn variated_chips_read_different_noise() {
        let tb = Testbed::fast();
        let rack = RackScenario::build(tb.chip(), 1, 2, VariationSpec::paper_default(7)).unwrap();
        let sm = tb.max_stressmark(2.5e6, Some(voltnoise_stressmark::SyncSpec::paper_default()));
        let loads: Vec<CoreLoad> = (0..rack.num_sites())
            .map(|_| CoreLoad::Stressmark(sm.clone()))
            .collect();
        let out = run_rack_noise(
            &rack,
            &loads,
            &NoiseRunConfig {
                window_s: Some(8e-6),
                ..NoiseRunConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out.num_sites(), 2 * NUM_CORES);
        // The two chips carry independently drawn variation, so their
        // continuous voltage extrema must not coincide (the tap-quantized
        // %p2p readings may — skitters discretize to 129 taps).
        let chip_a: Vec<u64> = (0..NUM_CORES).map(|i| out.v_min[i].to_bits()).collect();
        let chip_b: Vec<u64> = (NUM_CORES..2 * NUM_CORES)
            .map(|i| out.v_min[i].to_bits())
            .collect();
        assert_ne!(chip_a, chip_b);
        for &p in out.pct_p2p.iter() {
            assert!(p.is_finite() && p > 0.0);
        }
    }

    #[test]
    fn rack_signature_keys_on_variation_and_shape() {
        let tb = Testbed::fast();
        let a = RackScenario::build(tb.chip(), 1, 2, VariationSpec::none()).unwrap();
        let b = RackScenario::build(tb.chip(), 1, 2, VariationSpec::paper_default(1)).unwrap();
        let c = RackScenario::build(tb.chip(), 1, 2, VariationSpec::paper_default(2)).unwrap();
        let d = RackScenario::build(tb.chip(), 2, 2, VariationSpec::paper_default(1)).unwrap();
        let sigs = [a.signature(), b.signature(), c.signature(), d.signature()];
        for i in 0..sigs.len() {
            for j in (i + 1)..sigs.len() {
                assert_ne!(sigs[i], sigs[j], "signatures {i} and {j} must differ");
            }
        }
        // Identical builds share a signature (memoization is sound).
        let a2 = RackScenario::build(tb.chip(), 1, 2, VariationSpec::none()).unwrap();
        assert_eq!(a.signature(), a2.signature());
    }
}
