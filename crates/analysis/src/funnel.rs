//! The sequence-search funnel (paper Fig. 5 / §IV-B): candidate counts at
//! every stage plus the winning sequences.

use crate::experiment::Experiment;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use voltnoise_pdn::PdnError;
use voltnoise_system::noise::NoiseOutcome;
use voltnoise_system::testbed::Testbed;

/// Summary of the search funnel and its products.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunnelSummary {
    /// The nine candidate mnemonics.
    pub candidates: Vec<String>,
    /// Combinations enumerated.
    pub total_combinations: usize,
    /// Survivors of the microarchitectural filter.
    pub after_microarch: usize,
    /// Survivors of the IPC filter.
    pub after_ipc: usize,
    /// Winning maximum-power sequence and its power/IPC.
    pub max_sequence: (Vec<String>, f64, f64),
    /// Minimum-power sequence and its power.
    pub min_sequence: (Vec<String>, f64),
    /// Medium sequence and its power.
    pub medium_sequence: (Vec<String>, f64),
}

impl FunnelSummary {
    /// Builds the summary from a testbed.
    pub fn from_testbed(tb: &Testbed) -> Self {
        let s = tb.search();
        FunnelSummary {
            candidates: s.candidates.iter().map(|c| c.mnemonic.clone()).collect(),
            total_combinations: s.total_combinations,
            after_microarch: s.after_microarch,
            after_ipc: s.after_ipc,
            max_sequence: (s.best.mnemonics.clone(), s.best.power_w, s.best.ipc),
            min_sequence: (
                tb.min_sequence().mnemonics.clone(),
                tb.min_sequence().power_w,
            ),
            medium_sequence: (
                tb.medium_sequence().mnemonics.clone(),
                tb.medium_sequence().power_w,
            ),
        }
    }

    /// Renders the funnel report.
    pub fn render(&self) -> String {
        format!(
            "# Fig. 5 / §IV-B: maximum power sequence search funnel\n\
             candidates ({}): {:?}\n\
             combinations enumerated: {}\n\
             after microarchitectural filter: {}\n\
             after IPC filter: {}\n\
             max-power sequence: {:?} ({:.2} W, IPC {:.2})\n\
             min-power sequence: {:?} ({:.2} W)\n\
             medium sequence: {:?} ({:.2} W)\n",
            self.candidates.len(),
            self.candidates,
            self.total_combinations,
            self.after_microarch,
            self.after_ipc,
            self.max_sequence.0,
            self.max_sequence.1,
            self.max_sequence.2,
            self.min_sequence.0,
            self.min_sequence.1,
            self.medium_sequence.0,
            self.medium_sequence.1,
        )
    }
}

/// The Fig. 5 experiment: pure search-funnel summary, no simulation.
#[derive(Debug, Clone, Default)]
pub struct FunnelExperiment;

impl Experiment for FunnelExperiment {
    type Artifact = FunnelSummary;

    fn id(&self) -> &'static str {
        "fig5"
    }

    fn title(&self) -> &'static str {
        "Fig. 5: maximum-power sequence search funnel"
    }

    fn assemble(
        &self,
        tb: &Testbed,
        _outcomes: &[Arc<NoiseOutcome>],
    ) -> Result<FunnelSummary, PdnError> {
        Ok(FunnelSummary::from_testbed(tb))
    }

    fn render(&self, artifact: &FunnelSummary) -> String {
        artifact.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn funnel_matches_paper_shape() {
        let f = FunnelSummary::from_testbed(Testbed::fast());
        assert_eq!(f.candidates.len(), 9);
        assert_eq!(f.total_combinations, 531_441);
        assert!(f.after_microarch < f.total_combinations / 4);
        assert!(f.after_ipc <= 1000);
        assert!(f.max_sequence.1 > f.medium_sequence.1);
        assert!(f.medium_sequence.1 > f.min_sequence.1);
    }

    #[test]
    fn render_reports_counts() {
        let f = FunnelSummary::from_testbed(Testbed::fast());
        let text = f.render();
        assert!(text.contains("531441"));
        assert!(text.contains("max-power sequence"));
    }
}
