//! Fleet launcher / chaos harness CLI.
//!
//! Subcommands:
//!
//! * `serve  --shards K --store-dir DIR [...]` — spawn a worker pool,
//!   print the shard addresses, supervise (crash-respawn) until
//!   SIGTERM/SIGINT, then drain gracefully.
//! * `golden --jobs N --seed S [--reduced]` — run the deterministic
//!   campaign directly on an in-process engine and print one outcome
//!   JSON line per job: the byte-identity reference.
//! * `chaos  --jobs N --seed S --shards K --store-dir DIR
//!   [--chaos-seed C] [--reduced]` — run the same campaign through a
//!   supervised fleet under the seeded fault plan and print the same
//!   outcome lines. `diff` against `golden` is the smoke-level
//!   byte-identity check (`scripts/chaos_smoke.sh`).
//!
//! `--server-bin PATH` (or `VOLTNOISE_SERVER_BIN`) points at the worker
//! binary; by default it is looked up next to this executable.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;
use voltnoise_fleet::chaos::{campaign_specs, ChaosDriver, ChaosPlan};
use voltnoise_fleet::client::{FleetClient, FleetClientConfig};
use voltnoise_fleet::supervisor::{server_binary, FleetConfig, Supervisor};
use voltnoise_server::wire::JobSpec;
use voltnoise_stressmark::SyncSpec;
use voltnoise_system::engine::{Engine, SimJob};
use voltnoise_system::noise::NoiseRunConfig;
use voltnoise_system::testbed::Testbed;

fn usage() -> String {
    "usage: voltnoise-fleet <serve|golden|chaos> [options]\n\
     \n\
     serve   --shards K --store-dir DIR [--reduced] [--step-ceiling N]\n\
             [--server-bin PATH] [--max-restarts N]\n\
     golden  --jobs N --seed S [--reduced]\n\
     chaos   --jobs N --seed S --shards K --store-dir DIR\n\
             [--chaos-seed C] [--reduced] [--server-bin PATH]"
        .to_string()
}

struct Options {
    jobs: usize,
    seed: u64,
    chaos_seed: u64,
    shards: usize,
    store_dir: Option<PathBuf>,
    server_bin: Option<PathBuf>,
    reduced: bool,
    step_ceiling: u64,
    max_restarts: u32,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        jobs: 12,
        seed: 1,
        chaos_seed: 42,
        shards: 3,
        store_dir: None,
        server_bin: None,
        reduced: false,
        step_ceiling: 50_000_000,
        max_restarts: 3,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{what} requires a value"))
        };
        match flag.as_str() {
            "--jobs" => {
                opts.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--chaos-seed" => {
                opts.chaos_seed = value("--chaos-seed")?
                    .parse()
                    .map_err(|e| format!("--chaos-seed: {e}"))?;
            }
            "--shards" => {
                opts.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
            }
            "--store-dir" => opts.store_dir = Some(PathBuf::from(value("--store-dir")?)),
            "--server-bin" => opts.server_bin = Some(PathBuf::from(value("--server-bin")?)),
            "--reduced" => opts.reduced = true,
            "--step-ceiling" => {
                opts.step_ceiling = value("--step-ceiling")?
                    .parse()
                    .map_err(|e| format!("--step-ceiling: {e}"))?;
            }
            "--max-restarts" => {
                opts.max_restarts = value("--max-restarts")?
                    .parse()
                    .map_err(|e| format!("--max-restarts: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(opts)
}

fn testbed_of(reduced: bool) -> &'static Testbed {
    if reduced {
        Testbed::fast()
    } else {
        Testbed::shared()
    }
}

fn compile(testbed: &'static Testbed, spec: &JobSpec) -> SimJob {
    let factory = SimJob::batch(testbed.chip());
    let sync = spec.sync.then(SyncSpec::paper_default);
    let loads = testbed.loads_of_mapping(&spec.mapping, spec.stim_freq_hz, sync);
    factory.job(
        loads,
        NoiseRunConfig {
            window_s: spec.window_s,
            record_traces: spec.record_traces,
            seed: spec.seed,
            max_steps: spec.max_steps,
            ..NoiseRunConfig::default()
        },
    )
}

fn run_golden(opts: &Options) -> Result<(), String> {
    let testbed = testbed_of(opts.reduced);
    let specs = campaign_specs(opts.jobs, opts.seed);
    let jobs: Vec<SimJob> = specs.iter().map(|s| compile(testbed, s)).collect();
    let engine = Engine::new();
    let outcomes = engine.run_jobs(&jobs).map_err(|e| e.to_string())?;
    for outcome in &outcomes {
        println!(
            "{}",
            serde_json::to_string(outcome.as_ref()).map_err(|e| e.to_string())?
        );
    }
    Ok(())
}

fn fleet_config(opts: &Options) -> Result<FleetConfig, String> {
    let store_dir = opts
        .store_dir
        .clone()
        .ok_or_else(|| format!("--store-dir is required\n{}", usage()))?;
    let server_bin = match &opts.server_bin {
        Some(path) => path.clone(),
        None => server_binary().map_err(|e| e.to_string())?,
    };
    Ok(FleetConfig {
        shards: opts.shards.max(1),
        server_bin,
        store_dir,
        reduced: opts.reduced,
        step_ceiling: opts.step_ceiling,
        max_restarts: opts.max_restarts,
        ..FleetConfig::default()
    })
}

fn run_chaos(opts: &Options) -> Result<(), String> {
    let cfg = fleet_config(opts)?;
    let shards = cfg.shards;
    let mut supervisor = Supervisor::spawn(cfg).map_err(|e| e.to_string())?;
    let specs = campaign_specs(opts.jobs, opts.seed);
    let mut client = FleetClient::new(
        supervisor.addrs(),
        testbed_of(opts.reduced),
        FleetClientConfig::default(),
    );
    let plan = ChaosPlan::seeded(opts.chaos_seed, shards);
    eprintln!("chaos plan: {:?}", plan.actions());
    let mut driver = ChaosDriver::new(&mut supervisor, plan);
    let campaign = client.run_campaign(&specs, &mut driver);
    let chaos_report = driver.finish();
    let report = campaign.map_err(|e| e.to_string())?;
    eprintln!(
        "chaos injected: kills={} stalls={} resets={} respawns={} | client: failovers={} hard_retries={} breaker_opens={}",
        chaos_report.kills,
        chaos_report.stalls,
        chaos_report.resets,
        chaos_report.respawns,
        report.failovers,
        report.hard_retries,
        report.breaker_opens
    );
    supervisor
        .drain(Duration::from_secs(30))
        .map_err(|e| format!("fleet drain: {e}"))?;
    for (index, outcome) in report.outcomes.iter().enumerate() {
        match outcome {
            Some(json) => println!("{json}"),
            None => {
                let fault = report.faults[index].as_deref().unwrap_or("missing");
                return Err(format!("job {index} did not complete: {fault}"));
            }
        }
    }
    Ok(())
}

fn run_serve(opts: &Options) -> Result<(), String> {
    let cfg = fleet_config(opts)?;
    let mut supervisor = Supervisor::spawn(cfg).map_err(|e| e.to_string())?;
    for (shard, addr) in supervisor.addrs().iter().enumerate() {
        println!("voltnoise-fleet shard {shard} listening on {addr}");
    }
    voltnoise_server::signals::install();
    while !voltnoise_server::signals::shutdown_requested() {
        if let Err(e) = supervisor.check() {
            // Restart budget exhausted: drain whatever is left.
            eprintln!("voltnoise-fleet: {e}");
            break;
        }
        std::thread::sleep(Duration::from_millis(200));
    }
    eprintln!("voltnoise-fleet: draining");
    supervisor
        .drain(Duration::from_secs(30))
        .map_err(|e| e.to_string())?;
    eprintln!("voltnoise-fleet: drained cleanly");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let opts = match parse_options(&args[1..]) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("voltnoise-fleet: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "golden" => run_golden(&opts),
        "chaos" => run_chaos(&opts),
        "serve" => run_serve(&opts),
        _ => Err(usage()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("voltnoise-fleet: {e}");
            ExitCode::FAILURE
        }
    }
}
