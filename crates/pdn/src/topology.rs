//! The modeled multi-core chip PDN topology.
//!
//! Mirrors the zEC12-style hierarchy of the paper's Figures 1–3: a VRM
//! feeds the motherboard, which feeds the package through board
//! inductance; C4s feed **two on-die voltage domains** (the upper core row
//! {0, 2, 4} and the lower row {1, 3, 5} of Fig. 3) that share the single
//! package domain; the large deep-trench eDRAM L3 sits between the rows
//! and bridges the domains with a big damping capacitance. Cores attach to
//! their domain rail through the on-die grid and couple resistively to
//! their row neighbours.

use crate::error::PdnError;
use crate::netlist::{Netlist, NodeId, SourceId};
use serde::{Deserialize, Serialize};

/// Number of cores on the modeled chip.
pub const NUM_CORES: usize = 6;

/// On-die voltage domain of a core: cores {0, 2, 4} sit on domain 0 (upper
/// row), cores {1, 3, 5} on domain 1 (lower row).
pub fn core_domain(core: usize) -> usize {
    core % 2
}

/// Row-adjacent core pairs of the modeled floorplan (Fig. 3): upper row
/// 0–2–4, lower row 1–3–5.
pub const NEIGHBOR_PAIRS: [(usize, usize); 4] = [(0, 2), (2, 4), (1, 3), (3, 5)];

/// Electrical parameters of the chip/package/board model.
///
/// Defaults are calibrated so the die-level impedance profile shows the
/// paper's two resonant bands (≈40 kHz board/package and ≈2 MHz
/// die/package after the deep-trench eDRAM decap increase) with realistic
/// milliohm-scale magnitudes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PdnParams {
    /// Nominal VRM output voltage (volts).
    pub v_nom: f64,
    /// VRM output resistance (ohms).
    pub r_vrm: f64,
    /// VRM output inductance (henries).
    pub l_vrm: f64,
    /// Board bulk capacitance (farads) and its ESR (ohms).
    pub c_bulk: f64,
    /// ESR of the board bulk capacitance.
    pub esr_bulk: f64,
    /// Board spreading resistance (ohms).
    pub r_board: f64,
    /// Board + socket inductance (henries).
    pub l_board: f64,
    /// Package decap (farads) and ESR (ohms).
    pub c_pkg: f64,
    /// ESR of the package decap.
    pub esr_pkg: f64,
    /// C4/package-via resistance per on-die domain (ohms).
    pub r_c4: f64,
    /// C4/package-via inductance per on-die domain (henries).
    pub l_c4: f64,
    /// Per-domain on-die decap (farads) and ESR (ohms).
    pub c_domain: f64,
    /// ESR of the per-domain decap.
    pub esr_domain: f64,
    /// Domain-to-L3 bridge resistance (ohms).
    pub r_l3: f64,
    /// Domain-to-L3 bridge inductance (henries).
    pub l_l3: f64,
    /// L3/eDRAM deep-trench decap (farads) and ESR (ohms).
    pub c_l3: f64,
    /// ESR of the L3 decap.
    pub esr_l3: f64,
    /// On-die grid resistance from domain rail to each core (ohms).
    pub r_grid: f64,
    /// On-die grid inductance from domain rail to each core (henries).
    pub l_grid: f64,
    /// Local per-core decap (farads) and ESR (ohms).
    pub c_core: f64,
    /// ESR of the per-core decap.
    pub esr_core: f64,
    /// Resistive coupling between row-adjacent cores (ohms).
    pub r_neighbor: f64,
    /// Per-core multiplier on the grid resistance, modeling process and
    /// layout variation (index = core id).
    pub grid_variation: [f64; NUM_CORES],
}

impl Default for PdnParams {
    fn default() -> Self {
        PdnParams {
            v_nom: 1.05,
            r_vrm: 0.017e-3,
            l_vrm: 0.67e-9,
            c_bulk: 60e-3,
            esr_bulk: 0.067e-3,
            r_board: 0.027e-3,
            l_board: 1.0e-9,
            c_pkg: 15e-3,
            esr_pkg: 0.18e-3,
            r_c4: 0.025e-3,
            l_c4: 22e-12,
            c_domain: 316e-6,
            esr_domain: 0.004e-3,
            r_l3: 0.05e-3,
            l_l3: 30e-12,
            c_l3: 555e-6,
            esr_l3: 0.012e-3,
            r_grid: 0.017e-3,
            l_grid: 0.1e-12,
            c_core: 4.4e-6,
            esr_core: 0.267e-3,
            r_neighbor: 0.04e-3,
            grid_variation: [1.0; NUM_CORES],
        }
    }
}

impl PdnParams {
    /// Parameters of a legacy (pre-deep-trench) design: 40× less on-die
    /// decap, which moves the first-droop resonance back into the
    /// 30–100 MHz band the paper describes for older systems (§V-A).
    pub fn legacy_decap() -> Self {
        let mut p = PdnParams::default();
        p.c_domain /= 40.0;
        p.c_l3 /= 40.0;
        p.c_core /= 40.0;
        p
    }
}

/// Handles to one chip's observable nodes, as returned by
/// [`attach_chip`]. Shared by the single-chip [`ChipPdn`] and the
/// multi-chip [`DrawerPdn`].
#[derive(Debug, Clone)]
struct ChipNodes {
    pkg: NodeId,
    domains: [NodeId; 2],
    l3: NodeId,
    cores: [NodeId; NUM_CORES],
    core_sources: [SourceId; NUM_CORES],
}

/// Builds one package-and-below chip subtree hanging off `attach`
/// (a board-plane node): package, two on-die domains, L3 bridge, six
/// cores with loads, and the neighbor coupling resistors.
///
/// The element and node creation sequence here is byte-identity
/// critical: auto-generated intermediate node names (`rl_mid_N`,
/// `esr_mid_N`) derive from the running node count, and dense stamping
/// order follows element insertion order, so [`ChipPdn::build`] calling
/// this with an empty prefix must reproduce the historical netlist
/// exactly.
fn attach_chip(
    nl: &mut Netlist,
    attach: NodeId,
    params: &PdnParams,
    prefix: &str,
) -> Result<ChipNodes, PdnError> {
    let pkg = nl.add_node(format!("{prefix}pkg"));
    nl.add_series_rl(attach, pkg, params.r_board, params.l_board)?;
    nl.add_capacitor_with_esr(pkg, NodeId::GROUND, params.c_pkg, params.esr_pkg)?;

    let mut domains = [NodeId::GROUND; 2];
    for (d, dom) in domains.iter_mut().enumerate() {
        let node = nl.add_node(format!("{prefix}domain{d}"));
        nl.add_series_rl(pkg, node, params.r_c4, params.l_c4)?;
        nl.add_capacitor_with_esr(node, NodeId::GROUND, params.c_domain, params.esr_domain)?;
        *dom = node;
    }

    let l3 = nl.add_node(format!("{prefix}l3"));
    for dom in domains {
        nl.add_series_rl(dom, l3, params.r_l3, params.l_l3)?;
    }
    nl.add_capacitor_with_esr(l3, NodeId::GROUND, params.c_l3, params.esr_l3)?;

    let mut cores = [NodeId::GROUND; NUM_CORES];
    let mut core_sources = [SourceId(0); NUM_CORES];
    for i in 0..NUM_CORES {
        let node = nl.add_node(format!("{prefix}core{i}"));
        let dom = domains[core_domain(i)];
        nl.add_series_rl(
            dom,
            node,
            params.r_grid * params.grid_variation[i],
            params.l_grid,
        )?;
        nl.add_capacitor_with_esr(node, NodeId::GROUND, params.c_core, params.esr_core)?;
        core_sources[i] = nl.add_current_source(node, NodeId::GROUND)?;
        cores[i] = node;
    }
    for (a, b) in NEIGHBOR_PAIRS {
        nl.add_resistor(cores[a], cores[b], params.r_neighbor)?;
    }

    Ok(ChipNodes {
        pkg,
        domains,
        l3,
        cores,
        core_sources,
    })
}

/// A built chip PDN: the netlist plus handles to every observable node.
#[derive(Debug, Clone)]
pub struct ChipPdn {
    netlist: Netlist,
    params: PdnParams,
    board: NodeId,
    pkg: NodeId,
    domains: [NodeId; 2],
    l3: NodeId,
    cores: [NodeId; NUM_CORES],
    core_sources: [SourceId; NUM_CORES],
}

impl ChipPdn {
    /// Builds the chip PDN from parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidElement`] if any parameter is
    /// non-positive or non-finite.
    pub fn build(params: &PdnParams) -> Result<Self, PdnError> {
        let mut nl = Netlist::new();
        let vrm = nl.add_node("vrm");
        nl.add_voltage_source(vrm, NodeId::GROUND, params.v_nom)?;

        let board = nl.add_node("board");
        nl.add_series_rl(vrm, board, params.r_vrm, params.l_vrm)?;
        nl.add_capacitor_with_esr(board, NodeId::GROUND, params.c_bulk, params.esr_bulk)?;

        let chip = attach_chip(&mut nl, board, params, "")?;

        Ok(ChipPdn {
            netlist: nl,
            params: params.clone(),
            board,
            pkg: chip.pkg,
            domains: chip.domains,
            l3: chip.l3,
            cores: chip.cores,
            core_sources: chip.core_sources,
        })
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Mutable netlist access (e.g. to undervolt via
    /// [`Netlist::scale_voltage_sources`]).
    pub fn netlist_mut(&mut self) -> &mut Netlist {
        &mut self.netlist
    }

    /// Parameters the PDN was built from.
    pub fn params(&self) -> &PdnParams {
        &self.params
    }

    /// Node of the board plane.
    pub fn board_node(&self) -> NodeId {
        self.board
    }

    /// Node of the package plane.
    pub fn package_node(&self) -> NodeId {
        self.pkg
    }

    /// Node of on-die voltage domain `d` (0 or 1).
    ///
    /// # Panics
    ///
    /// Panics if `d > 1`.
    pub fn domain_node(&self, d: usize) -> NodeId {
        self.domains[d]
    }

    /// Node of the L3/eDRAM decap plane.
    pub fn l3_node(&self) -> NodeId {
        self.l3
    }

    /// Supply node of core `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= NUM_CORES`.
    pub fn core_node(&self, i: usize) -> NodeId {
        self.cores[i]
    }

    /// Current-source id of core `i`'s load.
    ///
    /// # Panics
    ///
    /// Panics if `i >= NUM_CORES`.
    pub fn core_source(&self, i: usize) -> SourceId {
        self.core_sources[i]
    }

    /// All six core supply nodes in core order.
    pub fn core_nodes(&self) -> [NodeId; NUM_CORES] {
        self.cores
    }
}

/// Parameters of a multi-chip drawer: N zEC12-like chips sharing one
/// board PDN, joined by a resistive/inductive board spine.
///
/// Models the paper's drawer/book hierarchy above the single-chip
/// substrate: one VRM and bulk capacitance feed a chain of board plane
/// segments, and each segment carries one full chip (package, domains,
/// L3, six cores). A 6-chip drawer assembles 200+ MNA unknowns —
/// deliberately past [`crate::mna::SPARSE_THRESHOLD`], so drawer
/// studies exercise the sparse solver path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrawerParams {
    /// Number of chips on the drawer (>= 1).
    pub chips: usize,
    /// Per-chip electrical parameters (shared by every chip).
    pub chip: PdnParams,
    /// Board spine resistance between adjacent chip sites (ohms).
    pub r_spine: f64,
    /// Board spine inductance between adjacent chip sites (henries).
    pub l_spine: f64,
}

impl Default for DrawerParams {
    fn default() -> Self {
        DrawerParams {
            chips: 6,
            chip: PdnParams::default(),
            r_spine: 0.02e-3,
            l_spine: 0.5e-9,
        }
    }
}

/// A built multi-chip drawer PDN: the netlist plus handles to every
/// chip's observable nodes.
#[derive(Debug, Clone)]
pub struct DrawerPdn {
    netlist: Netlist,
    params: DrawerParams,
    boards: Vec<NodeId>,
    chips: Vec<ChipNodes>,
}

impl DrawerPdn {
    /// Builds the drawer PDN: a VRM feeding board segment 0, spine
    /// segments chaining to board `i`, and one chip subtree per
    /// segment. Chip `i`'s core loads occupy drive slots
    /// `NUM_CORES*i .. NUM_CORES*(i+1)` in chip/core order.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidElement`] for a zero chip count or
    /// any non-positive/non-finite electrical parameter.
    pub fn build(params: &DrawerParams) -> Result<Self, PdnError> {
        if params.chips == 0 {
            return Err(PdnError::InvalidElement {
                element: "drawer chip count".to_string(),
                value: 0.0,
            });
        }
        let p = &params.chip;
        let mut nl = Netlist::new();
        let vrm = nl.add_node("vrm");
        nl.add_voltage_source(vrm, NodeId::GROUND, p.v_nom)?;

        let mut boards = Vec::with_capacity(params.chips);
        let board0 = nl.add_node("board0");
        nl.add_series_rl(vrm, board0, p.r_vrm, p.l_vrm)?;
        nl.add_capacitor_with_esr(board0, NodeId::GROUND, p.c_bulk, p.esr_bulk)?;
        boards.push(board0);
        for i in 1..params.chips {
            let board = nl.add_node(format!("board{i}"));
            nl.add_series_rl(boards[i - 1], board, params.r_spine, params.l_spine)?;
            boards.push(board);
        }

        let mut chips = Vec::with_capacity(params.chips);
        for (i, &board) in boards.iter().enumerate() {
            chips.push(attach_chip(&mut nl, board, p, &format!("c{i}_"))?);
        }

        Ok(DrawerPdn {
            netlist: nl,
            params: params.clone(),
            boards,
            chips,
        })
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Parameters the drawer was built from.
    pub fn params(&self) -> &DrawerParams {
        &self.params
    }

    /// Number of chips on the drawer.
    pub fn num_chips(&self) -> usize {
        self.chips.len()
    }

    /// Board plane node of chip site `chip`.
    ///
    /// # Panics
    ///
    /// Panics if `chip >= num_chips()`.
    pub fn board_node(&self, chip: usize) -> NodeId {
        self.boards[chip]
    }

    /// Package node of chip `chip`.
    ///
    /// # Panics
    ///
    /// Panics if `chip >= num_chips()`.
    pub fn package_node(&self, chip: usize) -> NodeId {
        self.chips[chip].pkg
    }

    /// On-die domain node `d` (0 or 1) of chip `chip`.
    ///
    /// # Panics
    ///
    /// Panics if `chip >= num_chips()` or `d > 1`.
    pub fn domain_node(&self, chip: usize, d: usize) -> NodeId {
        self.chips[chip].domains[d]
    }

    /// L3 decap node of chip `chip`.
    ///
    /// # Panics
    ///
    /// Panics if `chip >= num_chips()`.
    pub fn l3_node(&self, chip: usize) -> NodeId {
        self.chips[chip].l3
    }

    /// Supply node of core `core` on chip `chip`.
    ///
    /// # Panics
    ///
    /// Panics if `chip >= num_chips()` or `core >= NUM_CORES`.
    pub fn core_node(&self, chip: usize, core: usize) -> NodeId {
        self.chips[chip].cores[core]
    }

    /// Current-source id of core `core` on chip `chip` (equals
    /// `NUM_CORES * chip + core`).
    ///
    /// # Panics
    ///
    /// Panics if `chip >= num_chips()` or `core >= NUM_CORES`.
    pub fn core_source(&self, chip: usize, core: usize) -> SourceId {
        self.chips[chip].core_sources[core]
    }
}

/// Parameters of a rack: N drawers hanging off one shared supply spine.
///
/// Models the next hierarchy level of the paper's zEC12 frame above the
/// drawer/book: a rack-level bulk supply feeds drawer 0 directly and
/// each further drawer through a rack spine segment. Board-level values
/// (VRM impedance, bulk decap, nominal voltage) are taken from the base
/// chip parameters in `drawer.chip`; per-chip electrical variation is
/// supplied separately at build time via [`RackPdn::build_varied`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RackParams {
    /// Number of drawers in the rack (>= 1).
    pub drawers: usize,
    /// Per-drawer layout (chip count, base chip parameters, board spine).
    pub drawer: DrawerParams,
    /// Rack spine resistance between adjacent drawer heads (ohms).
    pub r_rack: f64,
    /// Rack spine inductance between adjacent drawer heads (henries).
    pub l_rack: f64,
}

impl Default for RackParams {
    fn default() -> Self {
        RackParams {
            drawers: 2,
            drawer: DrawerParams::default(),
            r_rack: 0.05e-3,
            l_rack: 1.5e-9,
        }
    }
}

impl RackParams {
    /// Total chip sites in the rack (`drawers * drawer.chips`).
    pub fn num_chips(&self) -> usize {
        self.drawers * self.drawer.chips
    }
}

/// Seeded per-chip process-variation model for rack populations.
///
/// Emits deterministic multipliers from a splitmix64 stream keyed on
/// `(seed, drawer, chip)`: chip-wide package impedance scaling, per-core
/// on-die grid scaling, and per-core critical-path sensitivity scaling
/// (applied by the system layer to its skitter model — this crate only
/// hands out the numbers). All spreads at `0.0` are the exact identity:
/// multipliers are then precisely `1.0`, so perturbed parameters equal
/// the base bitwise and a zero-variation rack reproduces the unvaried
/// build byte-for-byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariationSpec {
    /// Stream seed; two racks with equal seeds and spreads are identical.
    pub seed: u64,
    /// Half-spread of the uniform per-core grid-resistance multiplier
    /// (`1.0 ± grid_spread`).
    pub grid_spread: f64,
    /// Half-spread of the uniform chip-wide C4/package impedance
    /// multiplier (`1.0 ± package_spread`).
    pub package_spread: f64,
    /// Half-spread of the uniform per-core skitter-sensitivity
    /// multiplier (`1.0 ± sensitivity_spread`).
    pub sensitivity_spread: f64,
}

/// One step of the splitmix64 sequence (Steele et al.), the standard
/// minimal deterministic stream generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a splitmix64 draw onto a uniform multiplier `1.0 ± spread`.
/// Exactly `1.0` when `spread == 0.0`.
fn unit_multiplier(draw: u64, spread: f64) -> f64 {
    let unit = (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    1.0 + spread * (2.0 * unit - 1.0)
}

impl VariationSpec {
    /// The zero-variation identity spec: every multiplier is exactly 1.
    pub fn none() -> Self {
        VariationSpec {
            seed: 0,
            grid_spread: 0.0,
            package_spread: 0.0,
            sensitivity_spread: 0.0,
        }
    }

    /// Spreads sized like the single-chip population model (§VI): low
    /// double-digit-percent grid and sensitivity variation, small
    /// package-level variation.
    pub fn paper_default(seed: u64) -> Self {
        VariationSpec {
            seed,
            grid_spread: 0.12,
            package_spread: 0.05,
            sensitivity_spread: 0.09,
        }
    }

    /// True when every spread is zero (the identity spec).
    pub fn is_zero(&self) -> bool {
        self.grid_spread == 0.0 && self.package_spread == 0.0 && self.sensitivity_spread == 0.0
    }

    /// Per-chip stream state, decorrelated across `(seed, drawer, chip)`.
    fn stream(&self, drawer: usize, chip: usize) -> u64 {
        let mut state = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((drawer as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
            .wrapping_add((chip as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        // Burn one step so near-identical raw states decorrelate.
        splitmix64(&mut state);
        state
    }

    /// Base chip parameters perturbed for site `(drawer, chip)`:
    /// chip-wide C4 impedance scaling plus per-core grid scaling. With
    /// zero spreads the result equals `base` exactly.
    pub fn chip_pdn_params(&self, base: &PdnParams, drawer: usize, chip: usize) -> PdnParams {
        let mut state = self.stream(drawer, chip);
        let mut p = base.clone();
        let pkg = unit_multiplier(splitmix64(&mut state), self.package_spread);
        p.r_c4 *= pkg;
        p.l_c4 *= pkg;
        for g in p.grid_variation.iter_mut() {
            *g *= unit_multiplier(splitmix64(&mut state), self.grid_spread);
        }
        p
    }

    /// Per-core skitter sensitivity multipliers for site
    /// `(drawer, chip)`. All exactly `1.0` with zero spreads.
    pub fn skitter_variation(&self, drawer: usize, chip: usize) -> [f64; NUM_CORES] {
        let mut state = self.stream(drawer, chip);
        // Skip the package draw and the grid draws so sensitivity values
        // stay decoupled from the electrical ones.
        for _ in 0..=NUM_CORES {
            splitmix64(&mut state);
        }
        let mut out = [1.0; NUM_CORES];
        for s in out.iter_mut() {
            *s = unit_multiplier(splitmix64(&mut state), self.sensitivity_spread);
        }
        out
    }
}

/// A built rack PDN: N drawers of chips on one shared supply spine.
#[derive(Debug, Clone)]
pub struct RackPdn {
    netlist: Netlist,
    params: RackParams,
    boards: Vec<NodeId>,
    chips: Vec<ChipNodes>,
}

impl RackPdn {
    /// Builds a uniform rack: every chip uses the base parameters in
    /// `params.drawer.chip`.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidElement`] for a zero drawer/chip count
    /// or any non-positive/non-finite electrical parameter.
    pub fn build(params: &RackParams) -> Result<Self, PdnError> {
        let per_chip = vec![params.drawer.chip.clone(); params.num_chips()];
        Self::build_varied(params, &per_chip)
    }

    /// Builds a rack whose chip at flat site `drawer * chips + chip`
    /// uses `chip_params[site]` (e.g. from [`VariationSpec`]).
    ///
    /// Element creation order per drawer mirrors [`DrawerPdn::build`]
    /// (head board with bulk decap, spine-chained boards, then one chip
    /// subtree per board), so a 1-drawer × 1-chip rack is structurally —
    /// and therefore numerically — identical to [`ChipPdn::build`].
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidElement`] for a zero drawer/chip
    /// count, a `chip_params` length mismatch, or any non-positive/
    /// non-finite electrical parameter.
    pub fn build_varied(params: &RackParams, chip_params: &[PdnParams]) -> Result<Self, PdnError> {
        if params.drawers == 0 {
            return Err(PdnError::InvalidElement {
                element: "rack drawer count".to_string(),
                value: 0.0,
            });
        }
        if params.drawer.chips == 0 {
            return Err(PdnError::InvalidElement {
                element: "rack drawer chip count".to_string(),
                value: 0.0,
            });
        }
        if chip_params.len() != params.num_chips() {
            return Err(PdnError::InvalidElement {
                element: format!(
                    "rack chip parameter count (expected {})",
                    params.num_chips()
                ),
                value: chip_params.len() as f64,
            });
        }
        let base = &params.drawer.chip;
        let mut nl = Netlist::new();
        let vrm = nl.add_node("vrm");
        nl.add_voltage_source(vrm, NodeId::GROUND, base.v_nom)?;

        let mut boards = Vec::with_capacity(params.num_chips());
        let mut chips = Vec::with_capacity(params.num_chips());
        let mut prev_head: Option<NodeId> = None;
        for d in 0..params.drawers {
            let head = nl.add_node(format!("d{d}_board0"));
            match prev_head {
                // Drawer 0 hangs off the VRM exactly like a standalone
                // drawer's board 0.
                None => nl.add_series_rl(vrm, head, base.r_vrm, base.l_vrm)?,
                Some(prev) => nl.add_series_rl(prev, head, params.r_rack, params.l_rack)?,
            };
            nl.add_capacitor_with_esr(head, NodeId::GROUND, base.c_bulk, base.esr_bulk)?;
            prev_head = Some(head);

            let first = boards.len();
            boards.push(head);
            for i in 1..params.drawer.chips {
                let board = nl.add_node(format!("d{d}_board{i}"));
                nl.add_series_rl(
                    boards[first + i - 1],
                    board,
                    params.drawer.r_spine,
                    params.drawer.l_spine,
                )?;
                boards.push(board);
            }
            for i in 0..params.drawer.chips {
                let site = first + i;
                chips.push(attach_chip(
                    &mut nl,
                    boards[site],
                    &chip_params[site],
                    &format!("d{d}c{i}_"),
                )?);
            }
        }

        Ok(RackPdn {
            netlist: nl,
            params: params.clone(),
            boards,
            chips,
        })
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Parameters the rack was built from.
    pub fn params(&self) -> &RackParams {
        &self.params
    }

    /// Number of drawers in the rack.
    pub fn num_drawers(&self) -> usize {
        self.params.drawers
    }

    /// Number of chips per drawer.
    pub fn chips_per_drawer(&self) -> usize {
        self.params.drawer.chips
    }

    /// Total chip count across all drawers.
    pub fn num_chips(&self) -> usize {
        self.chips.len()
    }

    /// Flat chip-site index of `(drawer, chip)`.
    ///
    /// # Panics
    ///
    /// Panics if the site is out of range.
    fn site(&self, drawer: usize, chip: usize) -> usize {
        assert!(drawer < self.num_drawers(), "drawer {drawer} out of range");
        assert!(
            chip < self.chips_per_drawer(),
            "chip {chip} out of range on drawer {drawer}"
        );
        drawer * self.chips_per_drawer() + chip
    }

    /// Board plane node of chip `chip` on drawer `drawer`.
    ///
    /// # Panics
    ///
    /// Panics if the site is out of range.
    pub fn board_node(&self, drawer: usize, chip: usize) -> NodeId {
        self.boards[self.site(drawer, chip)]
    }

    /// Package node of chip `chip` on drawer `drawer`.
    ///
    /// # Panics
    ///
    /// Panics if the site is out of range.
    pub fn package_node(&self, drawer: usize, chip: usize) -> NodeId {
        self.chips[self.site(drawer, chip)].pkg
    }

    /// Supply node of core `core` of chip `chip` on drawer `drawer`.
    ///
    /// # Panics
    ///
    /// Panics if the site is out of range or `core >= NUM_CORES`.
    pub fn core_node(&self, drawer: usize, chip: usize, core: usize) -> NodeId {
        self.chips[self.site(drawer, chip)].cores[core]
    }

    /// Current-source id of core `core` of chip `chip` on drawer
    /// `drawer` (equals `NUM_CORES * (drawer * chips_per_drawer + chip)
    /// + core`, i.e. flat site order).
    ///
    /// # Panics
    ///
    /// Panics if the site is out of range or `core >= NUM_CORES`.
    pub fn core_source(&self, drawer: usize, chip: usize, core: usize) -> SourceId {
        self.chips[self.site(drawer, chip)].core_sources[core]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ac::{find_peaks, log_space, AcAnalysis};
    use crate::transient::{ConstantDrive, Probe, TransientConfig, TransientSolver};

    #[test]
    fn domains_partition_cores_by_row() {
        assert_eq!(core_domain(0), 0);
        assert_eq!(core_domain(2), 0);
        assert_eq!(core_domain(4), 0);
        assert_eq!(core_domain(1), 1);
        assert_eq!(core_domain(3), 1);
        assert_eq!(core_domain(5), 1);
    }

    #[test]
    fn build_produces_expected_sources() {
        let chip = ChipPdn::build(&PdnParams::default()).unwrap();
        assert_eq!(chip.netlist().current_source_count(), NUM_CORES);
        assert_eq!(chip.netlist().voltage_source_count(), 1);
        for i in 0..NUM_CORES {
            assert_eq!(chip.core_source(i).index(), i);
        }
    }

    #[test]
    fn dc_droop_is_small_and_ordered() {
        let chip = ChipPdn::build(&PdnParams::default()).unwrap();
        let mut solver = TransientSolver::new(chip.netlist()).unwrap();
        // All six cores drawing 20 A.
        let sol = solver.solve_dc(&ConstantDrive::new(vec![20.0; 6])).unwrap();
        let v_nom = chip.params().v_nom;
        for i in 0..NUM_CORES {
            let v = sol[chip.core_node(i).unknown_index().unwrap()];
            let droop = v_nom - v;
            assert!(droop > 0.0, "core {i} droop must be positive");
            assert!(droop < 0.06 * v_nom, "core {i} droop {droop} too large");
        }
        // Package sits above the core nodes.
        let v_pkg = sol[chip.package_node().unknown_index().unwrap()];
        let v_core0 = sol[chip.core_node(0).unknown_index().unwrap()];
        assert!(v_pkg > v_core0);
    }

    #[test]
    fn impedance_profile_shows_two_bands() {
        let chip = ChipPdn::build(&PdnParams::default()).unwrap();
        let ac = AcAnalysis::new(chip.netlist());
        let freqs = log_space(1e3, 50e6, 400).unwrap();
        let profile = ac.sweep(chip.core_node(0), &freqs).unwrap();
        let peaks = find_peaks(&profile).unwrap();
        assert!(peaks.len() >= 2, "expected at least two resonance peaks");
        let mut freqs_sorted: Vec<f64> = peaks.iter().take(2).map(|p| p.0).collect();
        freqs_sorted.sort_by(|a, b| a.total_cmp(b));
        let (f_lo, f_hi) = (freqs_sorted[0], freqs_sorted[1]);
        assert!(
            (10e3..120e3).contains(&f_lo),
            "low band at {f_lo:.3e}, expected tens of kHz"
        );
        assert!(
            (1e6..5e6).contains(&f_hi),
            "high band at {f_hi:.3e}, expected ~2 MHz"
        );
    }

    #[test]
    fn no_resonance_above_5mhz_with_deep_trench() {
        let chip = ChipPdn::build(&PdnParams::default()).unwrap();
        let ac = AcAnalysis::new(chip.netlist());
        let freqs = log_space(5e6, 500e6, 200).unwrap();
        let profile = ac.sweep(chip.core_node(0), &freqs).unwrap();
        let peaks = find_peaks(&profile).unwrap();
        // Any peak above 5 MHz must be small relative to the 2 MHz band.
        let z_2mhz = ac.impedance_at(chip.core_node(0), 2e6).unwrap().abs();
        for (f, m) in peaks {
            assert!(
                m < z_2mhz,
                "unexpected strong high-frequency resonance at {f:.3e} ({m:.3e} ohm)"
            );
        }
    }

    #[test]
    fn legacy_decap_moves_first_droop_up() {
        let modern = ChipPdn::build(&PdnParams::default()).unwrap();
        let legacy = ChipPdn::build(&PdnParams::legacy_decap()).unwrap();
        let freqs = log_space(1e5, 500e6, 400).unwrap();
        let find_top_band = |chip: &ChipPdn| {
            let ac = AcAnalysis::new(chip.netlist());
            let profile = ac.sweep(chip.core_node(0), &freqs).unwrap();
            find_peaks(&profile)
                .unwrap()
                .first()
                .map(|p| p.0)
                .unwrap_or(0.0)
        };
        let f_modern = find_top_band(&modern);
        let f_legacy = find_top_band(&legacy);
        assert!(
            f_legacy > 4.0 * f_modern,
            "legacy {f_legacy:.3e} should sit far above modern {f_modern:.3e}"
        );
        assert!(f_legacy > 5e6, "legacy first droop should exceed 5 MHz");
    }

    #[test]
    fn same_domain_transfer_impedance_exceeds_cross_domain() {
        let chip = ChipPdn::build(&PdnParams::default()).unwrap();
        let ac = AcAnalysis::new(chip.netlist());
        // Inject at core 0: response at core 2 (same row) vs core 1 (other row).
        let f = 2e6;
        let z_same = ac
            .transfer_impedance(chip.core_node(0), chip.core_node(2), f)
            .unwrap()
            .abs();
        let z_cross = ac
            .transfer_impedance(chip.core_node(0), chip.core_node(1), f)
            .unwrap()
            .abs();
        assert!(
            z_same > z_cross,
            "same-domain coupling {z_same:.3e} should exceed cross-domain {z_cross:.3e}"
        );
    }

    #[test]
    fn grid_variation_changes_core_droop() {
        let mut params = PdnParams::default();
        params.grid_variation[2] = 2.0;
        let chip = ChipPdn::build(&params).unwrap();
        let mut solver = TransientSolver::new(chip.netlist()).unwrap();
        let sol = solver.solve_dc(&ConstantDrive::new(vec![20.0; 6])).unwrap();
        let v2 = sol[chip.core_node(2).unknown_index().unwrap()];
        let v4 = sol[chip.core_node(4).unknown_index().unwrap()];
        assert!(v2 < v4, "core with higher grid resistance droops more");
    }

    #[test]
    fn transient_on_full_chip_runs() {
        let chip = ChipPdn::build(&PdnParams::default()).unwrap();
        let mut solver = TransientSolver::new(chip.netlist()).unwrap();
        let cfg = TransientConfig::new(20e-6);
        let probes: Vec<Probe> = (0..NUM_CORES)
            .map(|i| Probe::NodeVoltage(chip.core_node(i)))
            .collect();
        let res = solver
            .run(&ConstantDrive::new(vec![10.0; 6]), &probes, &cfg)
            .unwrap();
        for st in &res.stats {
            assert!(st.mean > 0.9 * chip.params().v_nom);
            assert!(st.peak_to_peak() < 1e-6);
        }
    }

    #[test]
    fn drawer_rejects_zero_chips() {
        let params = DrawerParams {
            chips: 0,
            ..DrawerParams::default()
        };
        assert!(matches!(
            DrawerPdn::build(&params),
            Err(PdnError::InvalidElement { .. })
        ));
    }

    #[test]
    fn drawer_scale_exceeds_sparse_threshold() {
        let drawer = DrawerPdn::build(&DrawerParams::default()).unwrap();
        assert_eq!(drawer.num_chips(), 6);
        let nl = drawer.netlist();
        assert_eq!(nl.current_source_count(), 6 * NUM_CORES);
        assert_eq!(nl.voltage_source_count(), 1);
        let size = nl.system_size();
        assert!(
            size >= 150,
            "drawer must be drawer-scale, got {size} unknowns"
        );
        assert!(size > crate::mna::SPARSE_THRESHOLD);
        let solver = TransientSolver::new(nl).unwrap();
        assert!(solver.uses_sparse(), "drawer must take the sparse path");
    }

    #[test]
    fn drawer_dc_droop_grows_down_the_spine() {
        let drawer = DrawerPdn::build(&DrawerParams::default()).unwrap();
        let mut solver = TransientSolver::new(drawer.netlist()).unwrap();
        let amps = vec![10.0; drawer.num_chips() * NUM_CORES];
        let sol = solver.solve_dc(&ConstantDrive::new(amps)).unwrap();
        let volt = |n: NodeId| sol[n.unknown_index().unwrap()];
        // Under a uniform load, chips farther along the spine see more
        // board-level IR drop than chip 0.
        let v_first = volt(drawer.package_node(0));
        let v_last = volt(drawer.package_node(drawer.num_chips() - 1));
        assert!(
            v_last < v_first,
            "far chip {v_last} should droop below near chip {v_first}"
        );
        // Every chip still lands near nominal.
        for c in 0..drawer.num_chips() {
            let v = volt(drawer.core_node(c, 0));
            assert!(v > 0.9 * drawer.params().chip.v_nom, "chip {c} at {v}");
        }
    }

    #[test]
    fn drawer_chips_are_electrically_identical_chips() {
        // A 1-chip drawer's chip subtree matches the standalone chip: the
        // only difference is the board spine (absent for chip 0).
        let params = DrawerParams {
            chips: 1,
            ..DrawerParams::default()
        };
        let drawer = DrawerPdn::build(&params).unwrap();
        let chip = ChipPdn::build(&params.chip).unwrap();
        assert_eq!(drawer.netlist().system_size(), chip.netlist().system_size());
        let mut ds = TransientSolver::new(drawer.netlist()).unwrap();
        let mut cs = TransientSolver::new(chip.netlist()).unwrap();
        let drive = ConstantDrive::new(vec![15.0; NUM_CORES]);
        let dv = ds.solve_dc(&drive).unwrap();
        let cv = cs.solve_dc(&drive).unwrap();
        for core in 0..NUM_CORES {
            let a = dv[drawer.core_node(0, core).unknown_index().unwrap()];
            let b = cv[chip.core_node(core).unknown_index().unwrap()];
            assert!((a - b).abs() < 1e-12, "core {core}: {a} vs {b}");
        }
    }

    #[test]
    fn rack_rejects_zero_drawers() {
        let params = RackParams {
            drawers: 0,
            ..RackParams::default()
        };
        assert!(matches!(
            RackPdn::build(&params),
            Err(PdnError::InvalidElement { .. })
        ));
    }

    #[test]
    fn rack_rejects_chip_param_count_mismatch() {
        let params = RackParams::default();
        let wrong = vec![PdnParams::default(); params.num_chips() + 1];
        assert!(matches!(
            RackPdn::build_varied(&params, &wrong),
            Err(PdnError::InvalidElement { .. })
        ));
    }

    #[test]
    fn rack_source_ordinals_follow_flat_site_order() {
        let params = RackParams {
            drawers: 2,
            drawer: DrawerParams {
                chips: 3,
                ..DrawerParams::default()
            },
            ..RackParams::default()
        };
        let rack = RackPdn::build(&params).unwrap();
        assert_eq!(rack.num_chips(), 6);
        assert_eq!(rack.netlist().current_source_count(), 6 * NUM_CORES);
        for d in 0..2 {
            for c in 0..3 {
                for core in 0..NUM_CORES {
                    assert_eq!(
                        rack.core_source(d, c, core).index(),
                        NUM_CORES * (d * 3 + c) + core
                    );
                }
            }
        }
    }

    #[test]
    fn degenerate_rack_is_bitwise_identical_to_chip() {
        // A 1-drawer × 1-chip rack must reproduce the standalone chip
        // build sequence exactly: identical system size and bitwise
        // identical DC solution (node names differ but play no role in
        // stamping order or auto-generated intermediate node naming).
        let params = RackParams {
            drawers: 1,
            drawer: DrawerParams {
                chips: 1,
                ..DrawerParams::default()
            },
            ..RackParams::default()
        };
        let rack = RackPdn::build(&params).unwrap();
        let chip = ChipPdn::build(&params.drawer.chip).unwrap();
        assert_eq!(rack.netlist().system_size(), chip.netlist().system_size());
        let mut rs = TransientSolver::new(rack.netlist()).unwrap();
        let mut cs = TransientSolver::new(chip.netlist()).unwrap();
        let drive = ConstantDrive::new(vec![15.0; NUM_CORES]);
        let rv = rs.solve_dc(&drive).unwrap();
        let cv = cs.solve_dc(&drive).unwrap();
        for core in 0..NUM_CORES {
            let a = rv[rack.core_node(0, 0, core).unknown_index().unwrap()];
            let b = cv[chip.core_node(core).unknown_index().unwrap()];
            assert!(a.to_bits() == b.to_bits(), "core {core}: {a} vs {b}");
        }
    }

    #[test]
    fn rack_droop_grows_down_the_rack_spine() {
        let params = RackParams {
            drawers: 3,
            drawer: DrawerParams {
                chips: 2,
                ..DrawerParams::default()
            },
            ..RackParams::default()
        };
        let rack = RackPdn::build(&params).unwrap();
        let mut solver = TransientSolver::new(rack.netlist()).unwrap();
        let amps = vec![10.0; rack.num_chips() * NUM_CORES];
        let sol = solver.solve_dc(&ConstantDrive::new(amps)).unwrap();
        let volt = |n: NodeId| sol[n.unknown_index().unwrap()];
        let v_near = volt(rack.package_node(0, 0));
        let v_far = volt(rack.package_node(2, 0));
        assert!(
            v_far < v_near,
            "far drawer {v_far} should droop below near drawer {v_near}"
        );
        for d in 0..3 {
            for c in 0..2 {
                let v = volt(rack.core_node(d, c, 0));
                assert!(v > 0.9 * params.drawer.chip.v_nom, "site {d}/{c} at {v}");
            }
        }
    }

    #[test]
    fn zero_variation_spec_is_bitwise_identity() {
        let spec = VariationSpec::none();
        assert!(spec.is_zero());
        let base = PdnParams::default();
        for d in 0..2 {
            for c in 0..3 {
                assert_eq!(spec.chip_pdn_params(&base, d, c), base);
                assert_eq!(spec.skitter_variation(d, c), [1.0; NUM_CORES]);
            }
        }
    }

    #[test]
    fn variation_spec_is_deterministic_and_decorrelated() {
        let spec = VariationSpec::paper_default(42);
        let base = PdnParams::default();
        let a = spec.chip_pdn_params(&base, 0, 1);
        let b = spec.chip_pdn_params(&base, 0, 1);
        assert_eq!(a, b, "same site must give identical parameters");
        let other = spec.chip_pdn_params(&base, 1, 1);
        assert_ne!(a, other, "different drawers must vary");
        let sens = spec.skitter_variation(0, 1);
        assert_eq!(sens, spec.skitter_variation(0, 1));
        for (i, s) in sens.iter().enumerate() {
            assert!(
                (*s - 1.0).abs() <= spec.sensitivity_spread + 1e-12,
                "core {i} multiplier {s} outside spread"
            );
            assert!(*s != 1.0, "spread draw should essentially never be exact");
        }
        // Multipliers within bounds for the electrical side too.
        for (i, g) in a.grid_variation.iter().enumerate() {
            assert!(
                (*g - 1.0).abs() <= spec.grid_spread + 1e-12,
                "core {i} grid multiplier {g} outside spread"
            );
        }
    }
}
