//! Wall-clock benchmarks of the experiment engine (`cargo bench`).
//!
//! A self-contained harness (`harness = false`; no external benchmark
//! framework is available offline) that measures what the engine layer
//! buys:
//!
//! 1. **Parallel vs serial** on the multi-point frequency sweep: the same
//!    job list through a 1-worker and an N-worker engine, with byte-exact
//!    result comparison — the speedup must not cost determinism.
//! 2. **Warm-cache replay**: the identical sweep a second time on the
//!    same engine answers entirely from the memo cache.
//! 3. **Registry walk**: every report experiment at reduced scale through
//!    one shared engine, with the final solve/hit statistics showing the
//!    cross-experiment deduplication (Figs. 11a/11b/13a share one ΔI
//!    campaign).

use std::time::{Duration, Instant};
use voltnoise::analysis::{registry, Experiment, SweepConfig, SweepExperiment};
use voltnoise::prelude::*;
use voltnoise::system::Engine;

fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

fn main() {
    let tb = Testbed::fast();
    let exp = SweepExperiment {
        cfg: SweepConfig::reduced(),
        synced: true,
    };
    let jobs = exp.jobs(tb).expect("sweep jobs build");
    println!("# engine bench: {}-job synchronized sweep", jobs.len());

    let serial = Engine::with_workers(1);
    let (serial_out, serial_t) = timed(|| serial.run_jobs(&jobs).expect("serial run"));
    println!("serial   (1 worker):  {serial_t:>10.2?}");

    let parallel = Engine::new();
    let (parallel_out, parallel_t) = timed(|| parallel.run_jobs(&jobs).expect("parallel run"));
    println!(
        "parallel ({} workers): {parallel_t:>10.2?}  speedup {:.2}x",
        parallel.workers(),
        serial_t.as_secs_f64() / parallel_t.as_secs_f64().max(1e-9)
    );

    let same = serial_out.iter().zip(&parallel_out).all(|(a, b)| {
        serde_json::to_string(&**a).expect("serializes")
            == serde_json::to_string(&**b).expect("serializes")
    });
    assert!(same, "parallel results diverged from serial");
    println!("determinism: parallel output byte-identical to serial");
    if parallel.workers() > 1 && parallel_t >= serial_t {
        eprintln!("warning: parallel engine did not beat the serial baseline on this machine");
    }

    let (_, warm_t) = timed(|| parallel.run_jobs(&jobs).expect("warm run"));
    println!(
        "warm-cache replay:    {warm_t:>10.2?}  ({} solves, {} cache hits)",
        parallel.solves(),
        parallel.cache_hits()
    );

    println!("# registry walk (reduced scale, one shared engine)");
    let engine = Engine::new();
    for entry in registry().iter().filter(|e| e.in_report) {
        let (out, t) = timed(|| entry.run(tb, &engine, true));
        out.unwrap_or_else(|e| panic!("{} failed: {e}", entry.id));
        println!("{:<10} {t:>10.2?}", entry.id);
    }
    let stats = engine.stats();
    println!(
        "# engine stats: {} workers, {} solves, {} cache hits",
        stats.workers, stats.solves, stats.cache_hits
    );
}
