//! Property-based tests over the workspace's core data structures and
//! invariants.
//!
//! Uses a small hand-rolled case generator (seeded, deterministic)
//! instead of an external property-testing framework: each test draws a
//! few dozen random cases from named ranges and asserts the invariant on
//! every case.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use voltnoise::measure::{Skitter, SkitterConfig};
use voltnoise::pdn::ac::AcAnalysis;
use voltnoise::pdn::linalg::Matrix;
use voltnoise::pdn::netlist::{Netlist, NodeId};
use voltnoise::pdn::transient::{ConstantDrive, Probe, TransientConfig, TransientSolver};
use voltnoise::pdn::waveform::{StressWaveform, WaveMode};
use voltnoise::prelude::*;
use voltnoise::system::guardband::GuardbandTable;
use voltnoise::system::spread_offsets;
use voltnoise::uarch::pipeline::{estimate_throughput, form_groups};
use voltnoise::uarch::Isa;

/// Runs `body` for `cases` deterministic seeded cases.
fn check(cases: u64, mut body: impl FnMut(&mut SmallRng)) {
    for case in 0..cases {
        let mut rng = SmallRng::seed_from_u64(0x5EED ^ (case << 8));
        body(&mut rng);
    }
}

fn vec_in(rng: &mut SmallRng, lo: f64, hi: f64, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

/// LU solve is a right inverse of matrix multiplication for
/// well-conditioned random systems.
#[test]
fn lu_solves_random_systems() {
    check(48, |rng| {
        let n = 4;
        let values = vec_in(rng, -5.0, 5.0, n * n);
        let rhs = vec_in(rng, -10.0, 10.0, n);
        let mut a = Matrix::<f64>::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                a[(r, c)] = values[r * n + c];
            }
            a[(r, r)] += 25.0; // diagonal dominance
        }
        let x = a.lu().unwrap().solve(&rhs).unwrap();
        let back = a.mul_vec(&x);
        for (b, r) in back.iter().zip(&rhs) {
            assert!((b - r).abs() < 1e-8);
        }
    });
}

/// A resistive divider network never produces node voltages outside the
/// source range (passivity of the DC solution).
#[test]
fn dc_voltages_bounded_by_source() {
    check(48, |rng| {
        let r1 = rng.gen_range(1e-4..1.0);
        let r2 = rng.gen_range(1e-4..1.0);
        let load = rng.gen_range(0.0..5.0);
        let mut nl = Netlist::new();
        let vdd = nl.add_node("vdd");
        nl.add_voltage_source(vdd, NodeId::GROUND, 1.0).unwrap();
        let mid = nl.add_node("mid");
        let die = nl.add_node("die");
        nl.add_resistor(vdd, mid, r1).unwrap();
        nl.add_resistor(mid, die, r2).unwrap();
        nl.add_resistor(die, NodeId::GROUND, 10.0).unwrap();
        nl.add_current_source(die, NodeId::GROUND).unwrap();
        let mut solver = TransientSolver::new(&nl).unwrap();
        let sol = solver.solve_dc(&ConstantDrive::new(vec![load])).unwrap();
        for node in [mid, die] {
            let v = sol[node.unknown_index().unwrap()];
            assert!(v <= 1.0 + 1e-9, "node above source: {v}");
        }
    });
}

/// AC impedance magnitude of any RC one-port is bounded by its DC
/// resistance (an RC network's |Z| is maximal at DC).
#[test]
fn rc_impedance_below_dc_resistance() {
    check(48, |rng| {
        let r = rng.gen_range(1e-3..10.0);
        let c = rng.gen_range(1e-9..1e-3);
        let f = rng.gen_range(1e2..1e8);
        let mut nl = Netlist::new();
        let die = nl.add_node("die");
        nl.add_resistor(die, NodeId::GROUND, r).unwrap();
        nl.add_capacitor(die, NodeId::GROUND, c).unwrap();
        let z = AcAnalysis::new(&nl).impedance_at(die, f).unwrap().abs();
        assert!(z <= r * (1.0 + 1e-9));
    });
}

/// Stress waveforms only ever emit the three defined levels (within ramp
/// interpolation bounds).
#[test]
fn waveform_values_stay_in_range() {
    check(48, |rng| {
        let t = rng.gen_range(0.0..1e-3);
        let phase = rng.gen_range(0.0..1e-6);
        let period_ns = rng.gen_range(100.0..100_000.0);
        let duty = rng.gen_range(0.1..0.9);
        let w = StressWaveform {
            i_low: 5.0,
            i_high: 20.0,
            i_idle: 3.0,
            stim_period: period_ns * 1e-9,
            duty,
            rise_time: 2e-9,
            mode: WaveMode::FreeRun {
                phase,
                period_skew_ppm: 50.0,
            },
        };
        let v = w.value(t);
        assert!((5.0..=20.0).contains(&v), "value {v}");
        let ws = StressWaveform {
            mode: WaveMode::Synced {
                interval: 4e-3,
                offset: 62.5e-9,
                events: 10,
            },
            ..w
        };
        let v = ws.value(t);
        assert!((3.0..=20.0).contains(&v), "synced value {v}");
    });
}

/// The skitter %p2p reading is monotone in the excursion width.
#[test]
fn skitter_monotone_in_excursion() {
    check(48, |rng| {
        let lo = rng.gen_range(0.0..0.1);
        let hi = rng.gen_range(0.0..0.1);
        let extra = rng.gen_range(0.001..0.05);
        let sk = Skitter::new(SkitterConfig::default());
        let narrow = sk.measure_extremes(1.05 - lo, 1.05 + hi).pct_p2p();
        let wide = sk
            .measure_extremes(1.05 - lo - extra, 1.05 + hi + extra)
            .pct_p2p();
        assert!(wide >= narrow);
    });
}

/// Group formation partitions the body: every index exactly once, in
/// order, and no group exceeds the dispatch width.
#[test]
fn groups_partition_body() {
    let isa = Isa::zlike();
    let cfg = CoreConfig::default();
    check(48, |rng| {
        let len = rng.gen_range(1usize..40);
        let body: Vec<Opcode> = (0..len)
            .map(|_| isa.opcodes().nth(rng.gen_range(0usize..1301)).unwrap())
            .collect();
        let groups = form_groups(&isa, &cfg, &body);
        let flat: Vec<usize> = groups.iter().flatten().copied().collect();
        assert_eq!(flat, (0..body.len()).collect::<Vec<_>>());
        assert!(groups
            .iter()
            .all(|g| !g.is_empty() && g.len() <= cfg.dispatch_width));
    });
}

/// The analytic throughput estimate never exceeds the dispatch width and
/// is always positive for non-empty bodies.
#[test]
fn throughput_estimate_bounded() {
    let isa = Isa::zlike();
    let cfg = CoreConfig::default();
    check(48, |rng| {
        let len = rng.gen_range(1usize..24);
        let body: Vec<Opcode> = (0..len)
            .map(|_| isa.opcodes().nth(rng.gen_range(0usize..1301)).unwrap())
            .collect();
        let est = estimate_throughput(&isa, &cfg, &body);
        assert!(est > 0.0);
        assert!(est <= cfg.dispatch_width as f64 + 1e-9);
    });
}

/// Offsets spread within a window stay within it and start at zero.
#[test]
fn spread_offsets_bounds() {
    check(48, |rng| {
        let n = rng.gen_range(1usize..7);
        let window = rng.gen_range(0u64..20);
        let offs = spread_offsets(n, window);
        assert_eq!(offs.len(), n);
        assert!(offs.iter().all(|&o| o <= window));
        assert_eq!(offs[0], 0);
    });
}

/// Guard-band tables are monotone regardless of the (noisy) measured
/// input order.
#[test]
fn guardband_table_monotone() {
    check(48, |rng| {
        let mut arr = [0.0f64; 7];
        for x in &mut arr {
            *x = rng.gen_range(0.0..0.2);
        }
        let safety = rng.gen_range(1.0..1.5);
        let t = GuardbandTable::from_worst_case_noise(arr, safety);
        for k in 1..=6 {
            assert!(t.margin_v(k) >= t.margin_v(k - 1));
        }
    });
}

/// Transient simulation of a passive RC network under constant load
/// settles to the DC solution regardless of element values.
#[test]
fn transient_settles_to_dc() {
    check(24, |rng| {
        let r = rng.gen_range(1e-3..0.1);
        let c = rng.gen_range(1e-8..1e-5);
        let load = rng.gen_range(0.0..20.0);
        let mut nl = Netlist::new();
        let vdd = nl.add_node("vdd");
        nl.add_voltage_source(vdd, NodeId::GROUND, 1.0).unwrap();
        let die = nl.add_node("die");
        nl.add_resistor(vdd, die, r).unwrap();
        nl.add_capacitor(die, NodeId::GROUND, c).unwrap();
        nl.add_current_source(die, NodeId::GROUND).unwrap();
        let mut solver = TransientSolver::new(&nl).unwrap();
        let cfg = TransientConfig::new(20e-6);
        let out = solver
            .run(
                &ConstantDrive::new(vec![load]),
                &[Probe::NodeVoltage(die)],
                &cfg,
            )
            .unwrap();
        let expected = 1.0 - load * r;
        assert!((out.stats[0].mean - expected).abs() < 1e-6);
        assert!(out.stats[0].peak_to_peak() < 1e-6);
    });
}

/// Trace playback is exactly periodic with the loop duration.
#[test]
fn trace_playback_is_periodic() {
    use voltnoise::pdn::transient::Drive;
    use voltnoise::pdn::waveform::TracePlayback;
    check(32, |rng| {
        let len = rng.gen_range(3usize..40);
        let samples = vec_in(rng, 1.0, 30.0, len);
        let t = rng.gen_range(0.0..1e-5);
        let p = TracePlayback::new(vec![samples], 1e-9, 2.0);
        let period = p.loop_duration(0);
        let mut a = [0.0];
        let mut b = [0.0];
        p.currents(t, &mut a);
        p.currents(t + period, &mut b);
        // Tolerate one-sample boundary slip from floating division.
        let mut c = [0.0];
        p.currents(t + period + 1e-12, &mut c);
        let periodic = (a[0] - b[0]).abs() < 1e-12 || (a[0] - c[0]).abs() < 1e-12;
        assert!(periodic, "value changed across one loop period");
    });
}

/// The global governor never overfills a slot when per-request sizes fit
/// the budget and capacity suffices.
#[test]
fn governor_respects_budget() {
    use voltnoise::system::mitigation::{GlobalNoiseGovernor, GovernorConfig};
    check(32, |rng| {
        let len = rng.gen_range(1usize..7);
        let requests = vec_in(rng, 0.5, 8.0, len);
        let budget = 10.0;
        let gov = GlobalNoiseGovernor::new(GovernorConfig {
            delta_i_budget_a: budget,
            max_stagger_ticks: 15, // plenty of slots
        });
        let admissions = gov.schedule(&requests);
        assert_eq!(admissions.len(), requests.len());
        assert!(gov.worst_slot_delta_i(&requests) <= budget + 1e-9);
    });
}

/// Dither outcomes are bounded by the pigeonhole principle.
#[test]
fn dither_best_alignment_bounds() {
    use voltnoise::system::dither::simulate_dither;
    check(32, |rng| {
        let cores = rng.gen_range(1usize..7);
        let slots = rng.gen_range(1u64..20);
        let intervals = rng.gen_range(1u64..200);
        let out = simulate_dither(cores, slots, intervals, 5);
        assert!(out.best_aligned_cores <= cores);
        let floor = cores.div_ceil(slots as usize);
        assert!(out.best_aligned_cores >= floor);
    });
}

/// Register dependencies can only slow execution down, never speed it
/// up, relative to the structural model.
#[test]
fn dependencies_never_increase_ipc() {
    use voltnoise::uarch::deps::{assign_operands, run_with_deps, OperandPolicy};
    use voltnoise::uarch::pipeline::PipelineSim;
    let isa = Isa::zlike();
    let cfg = CoreConfig::default();
    check(24, |rng| {
        let len = rng.gen_range(2usize..14);
        let body: Vec<Opcode> = (0..len)
            .map(|_| isa.opcodes().nth(rng.gen_range(0usize..1301)).unwrap())
            .collect();
        let structural = PipelineSim::new(&isa, &cfg).run(&body, 120, false).ipc();
        for policy in [OperandPolicy::Independent, OperandPolicy::Chained] {
            let with_deps = run_with_deps(&isa, &cfg, &assign_operands(&body, policy), 120).ipc();
            assert!(
                with_deps <= structural + 1e-9,
                "policy {policy:?}: {with_deps} > {structural}"
            );
        }
    });
}

/// Sticky bit strings grow monotonically under accumulation.
#[test]
fn bitstring_accumulation_is_monotone() {
    use voltnoise::measure::bitstring::StickyBitmap;
    check(32, |rng| {
        let len = rng.gen_range(1usize..60);
        let volts = vec_in(rng, 0.9, 1.15, len);
        let sk = Skitter::new(SkitterConfig::default());
        let mut sticky = StickyBitmap::new();
        let mut prev = 0;
        for v in volts {
            sticky.observe(&sk, v);
            let count = sticky.bits().count();
            assert!(count >= prev);
            assert!(count as usize <= voltnoise::measure::bitstring::TAPS);
            prev = count;
        }
    });
}

/// Impedance masks pick the band of the lowest covering frequency.
#[test]
fn mask_band_selection() {
    use voltnoise::pdn::design::ImpedanceMask;
    check(32, |rng| {
        let f = rng.gen_range(1.0..1e9);
        let mask = ImpedanceMask::new(vec![(1e4, 1e-3), (1e6, 2e-3), (1e8, 3e-3)]).unwrap();
        match mask.limit_at(f) {
            Some(z) => {
                if f <= 1e4 {
                    assert_eq!(z, 1e-3);
                } else if f <= 1e6 {
                    assert_eq!(z, 2e-3);
                } else {
                    assert_eq!(z, 3e-3);
                }
            }
            None => assert!(f > 1e8),
        }
    });
}

/// [`voltnoise::system::SimJob`] keys: hashing is consistent with
/// equality — jobs built from the same inputs compare equal and hash
/// identically, and any drawn perturbation of seed, window, trace
/// recording or per-core load produces an unequal key.
#[test]
fn sim_job_hash_consistent_with_equality() {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    use voltnoise::system::SimJob;

    fn hash_of(job: &SimJob) -> u64 {
        let mut h = DefaultHasher::new();
        job.key().hash(&mut h);
        h.finish()
    }

    let tb = Testbed::fast();
    let freqs = [45e3, 300e3, 2.5e6];
    let windows = [None, Some(20e-6), Some(35e-6)];
    let batch = SimJob::batch(tb.chip());
    let loads_of = |freq: f64, synced: bool| -> [CoreLoad; 6] {
        let sm = tb.max_stressmark(freq, synced.then(SyncSpec::paper_default));
        std::array::from_fn(|_| CoreLoad::Stressmark(sm.clone()))
    };
    check(48, |rng| {
        let freq = freqs[rng.gen_range(0..freqs.len() as u32) as usize];
        let synced = rng.gen_range(0..2u32) == 1;
        let cfg = NoiseRunConfig {
            window_s: windows[rng.gen_range(0..windows.len() as u32) as usize],
            record_traces: rng.gen_range(0..2u32) == 1,
            seed: u64::from(rng.gen_range(0..4u32)),
            ..NoiseRunConfig::default()
        };
        let a = batch.job(loads_of(freq, synced), cfg.clone());
        let b = batch.job(loads_of(freq, synced), cfg.clone());
        assert_eq!(a.key(), b.key(), "same inputs must produce equal keys");
        assert_eq!(hash_of(&a), hash_of(&b), "equal keys must hash equally");

        // Any single perturbation must change the key.
        let perturbed = [
            batch.job(
                loads_of(freq, synced),
                NoiseRunConfig {
                    seed: cfg.seed + 1,
                    ..cfg.clone()
                },
            ),
            batch.job(
                loads_of(freq, synced),
                NoiseRunConfig {
                    record_traces: !cfg.record_traces,
                    ..cfg.clone()
                },
            ),
            batch.job(
                loads_of(freq, synced),
                NoiseRunConfig {
                    window_s: Some(55e-6),
                    ..cfg.clone()
                },
            ),
            batch.job(loads_of(freq * 1.5, synced), cfg.clone()),
        ];
        for p in &perturbed {
            assert_ne!(
                a.key(),
                p.key(),
                "perturbed inputs must produce distinct keys"
            );
        }
    });
}

/// Welch PSD merging is associative, commutative, and
/// segment-count-preserving — bit for bit, on any random partition of
/// the work. The fixed-point accumulator makes partial periodogram
/// merging exact, so a fleet can shard a campaign's spectral telemetry
/// arbitrarily and every merge tree produces identical bytes.
#[test]
fn welch_merge_is_associative_commutative_and_exact() {
    use voltnoise::pdn::signal::{welch_psd, WelchConfig, WelchPsd};
    check(24, |rng| {
        let cfg = WelchConfig::half_overlap(64, 1.0e6);
        let parts: Vec<WelchPsd> = (0..3)
            .map(|_| {
                let n = rng.gen_range(96usize..1500);
                let samples = vec_in(rng, -2.0, 2.0, n);
                welch_psd(&samples, cfg).unwrap()
            })
            .collect();
        let (a, b, c) = (&parts[0], &parts[1], &parts[2]);

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c), built left and right.
        let mut left = a.clone();
        left.merge(b).unwrap();
        left.merge(c).unwrap();
        let mut right = b.clone();
        right.merge(c).unwrap();
        let mut right_total = a.clone();
        right_total.merge(&right).unwrap();
        assert_eq!(left, right_total, "merge must be associative, bitwise");

        // a ⊕ b == b ⊕ a.
        let mut ab = a.clone();
        ab.merge(b).unwrap();
        let mut ba = b.clone();
        ba.merge(a).unwrap();
        assert_eq!(ab, ba, "merge must be commutative, bitwise");

        // Segment counts are conserved like any telemetry counter.
        assert_eq!(
            left.segments(),
            a.segments() + b.segments() + c.segments(),
            "merge must preserve total segment count"
        );

        // Mismatched configurations must refuse, not silently mix.
        let other = welch_psd(
            &vec_in(rng, -1.0, 1.0, 256),
            WelchConfig::half_overlap(128, 1.0e6),
        )
        .unwrap();
        assert!(a.clone().merge(&other).is_err());
    });
}

/// The periodic Hann window keeps its analytic normalization on every
/// power-of-two length: DC gain exactly 1/2 and power gain exactly 3/8
/// (to float-sum roundoff), which is what makes the one-sided PSD
/// scaling — and therefore every band-power number — trustworthy.
#[test]
fn hann_window_gains_match_analytic_values() {
    use voltnoise::pdn::signal::{hann_window, window_dc_gain, window_power_gain};
    for exp in 2..14 {
        let n = 1usize << exp;
        let w = hann_window(n);
        assert_eq!(w.len(), n);
        assert!(
            (window_dc_gain(&w) - 0.5).abs() < 1e-12,
            "DC gain drifted at n={n}: {}",
            window_dc_gain(&w)
        );
        assert!(
            (window_power_gain(&w) - 0.375).abs() < 1e-12,
            "power gain drifted at n={n}: {}",
            window_power_gain(&w)
        );
    }
}
