//! Multi-chip reproducibility studies.
//!
//! The paper's experimental discipline (§III): "various CP chips of zEC12
//! systems were measured ... experiments have been run on different
//! processors multiple times to check their reproducibility, and
//! arithmetic average values are reported". This module runs the same
//! experiment across a population of seeded chip instances and reports
//! per-core statistics, so reproducibility and the spread due to
//! manufacturing variation can be quantified.
//!
//! The per-chip solves run as content-keyed [`SimJob`]s through an
//! [`Engine`] (one job per seed, executed in parallel), so repeated
//! studies over overlapping seed sets answer from the cache and — with a
//! persistent store attached — resume across crashes like every other
//! campaign.

use crate::chip::Chip;
use crate::engine::{Engine, SimJob};
use crate::noise::{CoreLoad, NoiseRunConfig};
use crate::site::SiteVec;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use voltnoise_pdn::topology::NUM_CORES;
use voltnoise_pdn::PdnError;

/// Per-core noise statistics over a chip population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationStudy {
    /// Seeds of the measured chips (seed 0 = the curated paper chip).
    pub seeds: Vec<u64>,
    /// Arithmetic mean %p2p per core across chips.
    pub mean_pct: SiteVec<f64>,
    /// Standard deviation per core across chips.
    pub std_pct: SiteVec<f64>,
    /// Highest single-core reading over the whole population and the
    /// `(seed, core)` where it occurred.
    pub worst: (u64, usize, f64),
}

impl PopulationStudy {
    /// Runs the same per-core loads on `seeds.len()` chip instances
    /// through the shared experiment engine.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] if a chip build or PDN solve fails.
    pub fn run(
        seeds: &[u64],
        loads: &[CoreLoad],
        run_cfg: &NoiseRunConfig,
    ) -> Result<Self, PdnError> {
        PopulationStudy::run_on(Engine::shared(), seeds, loads, run_cfg)
    }

    /// [`PopulationStudy::run`] on an explicit engine.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] if a chip build or PDN solve fails.
    pub fn run_on(
        engine: &Engine,
        seeds: &[u64],
        loads: &[CoreLoad],
        run_cfg: &NoiseRunConfig,
    ) -> Result<Self, PdnError> {
        let loads: SiteVec<CoreLoad> = loads.iter().cloned().collect();
        let jobs = seeds
            .iter()
            .map(|&seed| {
                let chip = if seed == 0 {
                    Chip::paper_default()
                } else {
                    Chip::with_seed(seed)?
                };
                Ok(SimJob::new(Arc::new(chip), loads.clone(), run_cfg.clone()))
            })
            .collect::<Result<Vec<_>, PdnError>>()?;
        let outcomes = engine.run_jobs(&jobs)?;

        let mut worst = (0u64, 0usize, f64::NEG_INFINITY);
        let mut per_chip: Vec<SiteVec<f64>> = Vec::with_capacity(seeds.len());
        for (&seed, out) in seeds.iter().zip(&outcomes) {
            for (core, &pct) in out.pct_p2p.iter().enumerate() {
                if pct > worst.2 {
                    worst = (seed, core, pct);
                }
            }
            per_chip.push(out.pct_p2p.clone());
        }
        let n = per_chip.len().max(1) as f64;
        let mean_pct = SiteVec::from_fn(NUM_CORES, |i| {
            per_chip.iter().map(|c| c[i]).sum::<f64>() / n
        });
        let std_pct = SiteVec::from_fn(NUM_CORES, |i| {
            let m = mean_pct[i];
            (per_chip
                .iter()
                .map(|c| (c[i] - m) * (c[i] - m))
                .sum::<f64>()
                / n)
                .sqrt()
        });
        Ok(PopulationStudy {
            seeds: seeds.to_vec(),
            mean_pct,
            std_pct,
            worst,
        })
    }

    /// Mean of the per-core means.
    pub fn grand_mean(&self) -> f64 {
        self.mean_pct.iter().sum::<f64>() / self.mean_pct.len().max(1) as f64
    }

    /// Largest per-core relative spread (`std / mean`) — the
    /// reproducibility figure of merit.
    pub fn max_relative_spread(&self) -> f64 {
        self.mean_pct
            .iter()
            .zip(self.std_pct.iter())
            .map(|(m, s)| if *m > 0.0 { s / m } else { 0.0 })
            .fold(0.0, f64::max)
    }

    /// Renders the study.
    pub fn render(&self) -> String {
        let mut out = format!(
            "# multi-chip reproducibility ({} chips)\ncore,mean_pct_p2p,std_pct_p2p\n",
            self.seeds.len()
        );
        for i in 0..self.mean_pct.len() {
            out.push_str(&format!(
                "core{i},{:.1},{:.2}\n",
                self.mean_pct[i], self.std_pct[i]
            ));
        }
        out.push_str(&format!(
            "# worst reading: {:.1} %p2p on core {} of chip seed {}\n",
            self.worst.2, self.worst.1, self.worst.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::Testbed;
    use voltnoise_stressmark::SyncSpec;

    fn loads() -> [CoreLoad; NUM_CORES] {
        let tb = Testbed::fast();
        let sm = tb.max_stressmark(2.5e6, Some(SyncSpec::paper_default()));
        std::array::from_fn(|_| CoreLoad::Stressmark(sm.clone()))
    }

    #[test]
    fn population_reproduces_within_reasonable_spread() {
        let cfg = NoiseRunConfig {
            window_s: Some(30e-6),
            ..NoiseRunConfig::default()
        };
        let study = PopulationStudy::run(&[0, 7, 21, 42], &loads(), &cfg).unwrap();
        // Chips agree broadly: the stressmark stresses them all...
        assert!(
            study.grand_mean() > 35.0,
            "grand mean {}",
            study.grand_mean()
        );
        // ...and manufacturing variation stays a second-order effect.
        assert!(
            study.max_relative_spread() < 0.20,
            "spread {}",
            study.max_relative_spread()
        );
        assert!(study.worst.2 >= study.grand_mean());
    }

    #[test]
    fn single_chip_population_has_zero_spread() {
        let cfg = NoiseRunConfig {
            window_s: Some(25e-6),
            ..NoiseRunConfig::default()
        };
        let study = PopulationStudy::run(&[0], &loads(), &cfg).unwrap();
        assert!(study.std_pct.iter().all(|s| *s == 0.0));
        assert_eq!(study.seeds, vec![0]);
    }

    #[test]
    fn render_lists_every_core() {
        let cfg = NoiseRunConfig {
            window_s: Some(25e-6),
            ..NoiseRunConfig::default()
        };
        let study = PopulationStudy::run(&[0, 3], &loads(), &cfg).unwrap();
        let text = study.render();
        for i in 0..NUM_CORES {
            assert!(text.contains(&format!("core{i},")));
        }
    }

    #[test]
    fn repeated_studies_reuse_cached_solves() {
        let engine = Engine::new();
        let cfg = NoiseRunConfig {
            window_s: Some(8e-6),
            ..NoiseRunConfig::default()
        };
        let first = PopulationStudy::run_on(&engine, &[0, 7], &loads(), &cfg).unwrap();
        let solved = engine.stats().solves;
        assert_eq!(solved, 2);
        // A second study over an overlapping population only solves the
        // new seed.
        let second = PopulationStudy::run_on(&engine, &[0, 7, 21], &loads(), &cfg).unwrap();
        assert_eq!(engine.stats().solves, solved + 1);
        assert_eq!(second.seeds.len(), 3);
        assert!(first.grand_mean() > 0.0 && second.grand_mean() > 0.0);
    }
}
