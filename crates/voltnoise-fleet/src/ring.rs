//! Consistent-hash ring over shard ids, keyed by a job's
//! `store_digest`.
//!
//! The ring is the fleet's routing contract: every router that builds
//! the same `(shards, vnodes)` ring sends the same job to the same
//! shard, with no coordination and no shared state — the property that
//! lets a respawned worker find its own prior results in its shard
//! store. Each shard owns `vnodes` points on a 64-bit circle (FNV-1a
//! of a stable label), and a key routes to the owner of the first
//! point at or after the key's own hash, wrapping at the top.
//!
//! [`HashRing::preference`] extends routing to failover: the distinct
//! shards in ring-successor order from the key's position. Index 0 is
//! the primary; a router that finds the primary's circuit breaker open
//! walks down the list, so every router agrees on the fallback too.

/// FNV-1a 64-bit — stable across processes and platforms, which is
/// what makes ring placement a cross-process contract.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A consistent-hash ring mapping key digests to shard ids.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, shard)` sorted by point.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// A ring of `shards` shards with `vnodes` points each. Both are
    /// clamped to at least 1.
    pub fn new(shards: usize, vnodes: usize) -> HashRing {
        let shards = shards.max(1);
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            for vnode in 0..vnodes {
                let label = format!("shard-{shard}/vnode-{vnode}");
                points.push((fnv1a64(label.as_bytes()), shard));
            }
        }
        points.sort_unstable();
        HashRing { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The primary shard for a key digest.
    pub fn shard_of(&self, digest: &str) -> usize {
        self.preference_iter(digest)
            .next()
            .expect("ring has at least one point")
    }

    /// Distinct shards in ring-successor order from the key's position:
    /// `[primary, first fallback, second fallback, ...]`, length
    /// exactly [`HashRing::shards`].
    pub fn preference(&self, digest: &str) -> Vec<usize> {
        self.preference_iter(digest).collect()
    }

    fn preference_iter<'a>(&'a self, digest: &str) -> impl Iterator<Item = usize> + 'a {
        let key = fnv1a64(digest.as_bytes());
        let start = self.points.partition_point(|&(point, _)| point < key);
        let n = self.points.len();
        let mut seen = vec![false; self.shards];
        (0..n).filter_map(move |offset| {
            let (_, shard) = self.points[(start + offset) % n];
            if seen[shard] {
                None
            } else {
                seen[shard] = true;
                Some(shard)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digests(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("{:032x}", i * 7919 + 13)).collect()
    }

    #[test]
    fn every_shard_owns_some_keys() {
        let ring = HashRing::new(3, 16);
        let mut owned = [0usize; 3];
        for d in digests(300) {
            owned[ring.shard_of(&d)] += 1;
        }
        for (shard, count) in owned.iter().enumerate() {
            assert!(*count > 0, "shard {shard} owns no keys: {owned:?}");
        }
    }

    #[test]
    fn routing_is_stable_across_ring_instances() {
        let a = HashRing::new(4, 16);
        let b = HashRing::new(4, 16);
        for d in digests(100) {
            assert_eq!(a.shard_of(&d), b.shard_of(&d));
            assert_eq!(a.preference(&d), b.preference(&d));
        }
    }

    #[test]
    fn preference_is_a_permutation_led_by_the_primary() {
        let ring = HashRing::new(5, 8);
        for d in digests(50) {
            let pref = ring.preference(&d);
            assert_eq!(pref.len(), 5);
            assert_eq!(pref[0], ring.shard_of(&d));
            let mut sorted = pref.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4], "{pref:?}");
        }
    }

    #[test]
    fn single_shard_ring_routes_everything_to_it() {
        let ring = HashRing::new(1, 4);
        for d in digests(20) {
            assert_eq!(ring.shard_of(&d), 0);
            assert_eq!(ring.preference(&d), vec![0]);
        }
    }
}
