//! Worker-process lifecycle: spawn N `voltnoise-server` shards, detect
//! crashes, respawn within a bounded budget, forward drains.
//!
//! Each shard gets its own JSONL store (`shardK.jsonl` under the fleet
//! store directory) plus every sibling's store attached read-only
//! (`--read-store`), so any worker can serve a crashed sibling's
//! flushed results without ever writing to a file it doesn't own —
//! the invariant behind the fleet's zero-duplicate-solve guarantee.
//!
//! Crash recovery reuses the daemon's durability contract wholesale: a
//! respawned worker reopens the same `--store` path and resumes from
//! whatever its predecessor flushed; the supervisor only contributes
//! the restart accounting (`--restart-gen`, bounded by
//! [`FleetConfig::max_restarts`]) and the fresh port discovery.

use std::io::{self, BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

/// `SIGTERM` — graceful drain request.
pub const SIGTERM: i32 = 15;
/// `SIGKILL` — immediate, uncatchable death (the crash injection).
pub const SIGKILL: i32 = 9;
/// `SIGSTOP` — freeze the process (the stalled-shard injection).
pub const SIGSTOP: i32 = 19;
/// `SIGCONT` — resume a stopped process.
pub const SIGCONT: i32 = 18;

extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}

/// Sends a signal to a process.
///
/// # Errors
///
/// Returns the OS error when the signal cannot be delivered (e.g. the
/// process is already gone).
pub fn send_signal(pid: u32, sig: i32) -> io::Result<()> {
    let pid = i32::try_from(pid).map_err(|_| io::Error::other("pid out of range"))?;
    if unsafe { kill(pid, sig) } == 0 {
        Ok(())
    } else {
        Err(io::Error::last_os_error())
    }
}

/// Locates the `voltnoise-server` binary: the `VOLTNOISE_SERVER_BIN`
/// env override, else next to the current executable (both live in
/// `target/<profile>/` after a workspace build; test binaries live one
/// directory deeper, which the parent-walk covers).
///
/// # Errors
///
/// Returns an error naming the paths tried when no binary is found.
pub fn server_binary() -> io::Result<PathBuf> {
    if let Ok(path) = std::env::var("VOLTNOISE_SERVER_BIN") {
        let path = PathBuf::from(path);
        if path.is_file() {
            return Ok(path);
        }
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("VOLTNOISE_SERVER_BIN={} does not exist", path.display()),
        ));
    }
    let exe = std::env::current_exe()?;
    let mut tried = Vec::new();
    let mut dir = exe.parent();
    for _ in 0..3 {
        let Some(d) = dir else { break };
        let candidate = d.join("voltnoise-server");
        if candidate.is_file() {
            return Ok(candidate);
        }
        tried.push(candidate.display().to_string());
        dir = d.parent();
    }
    Err(io::Error::new(
        io::ErrorKind::NotFound,
        format!(
            "voltnoise-server binary not found (set VOLTNOISE_SERVER_BIN); tried: {}",
            tried.join(", ")
        ),
    ))
}

/// Fleet-wide configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of worker shards.
    pub shards: usize,
    /// Path to the `voltnoise-server` binary.
    pub server_bin: PathBuf,
    /// Directory holding the per-shard JSONL stores (created if
    /// missing).
    pub store_dir: PathBuf,
    /// Spawn workers against the reduced testbed (`--reduced`).
    pub reduced: bool,
    /// Per-worker admission ceiling, estimated steps.
    pub step_ceiling: u64,
    /// Connection-handler threads per worker.
    pub worker_threads: usize,
    /// Respawns allowed per shard before the supervisor gives up.
    pub max_restarts: u32,
    /// Worker drain grace, forwarded as `--drain-grace-ms`.
    pub drain_grace_ms: u64,
    /// Forwarded as `--keep-alive-requests`.
    pub keep_alive_requests: usize,
    /// Forwarded as `--keep-alive-idle-ms`.
    pub keep_alive_idle_ms: u64,
    /// How long to wait for the discovery line at spawn.
    pub spawn_timeout: Duration,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            shards: 3,
            server_bin: PathBuf::new(),
            store_dir: PathBuf::new(),
            reduced: false,
            step_ceiling: 50_000_000,
            worker_threads: 2,
            max_restarts: 3,
            drain_grace_ms: 2_000,
            keep_alive_requests: 64,
            keep_alive_idle_ms: 5_000,
            spawn_timeout: Duration::from_secs(20),
        }
    }
}

impl FleetConfig {
    /// The JSONL store path of one shard.
    pub fn store_path(&self, shard: usize) -> PathBuf {
        self.store_dir.join(format!("shard{shard}.jsonl"))
    }
}

/// One live worker process.
struct Worker {
    child: Child,
    /// Bound address parsed from the discovery line.
    addr: String,
    /// Respawn count: 0 on first spawn.
    restart_gen: u32,
    /// Remaining stdout of the child (kept open so the worker's final
    /// prints don't hit a closed pipe; drained at exit).
    stdout: Option<BufReader<ChildStdout>>,
}

/// Spawns and monitors the worker pool.
pub struct Supervisor {
    cfg: FleetConfig,
    workers: Vec<Worker>,
    restarts_total: u64,
}

impl Supervisor {
    /// Spawns the full pool and waits for every worker's discovery
    /// line.
    ///
    /// # Errors
    ///
    /// Returns an error when the store directory cannot be created or
    /// any worker fails to spawn and announce its address in time.
    pub fn spawn(cfg: FleetConfig) -> io::Result<Supervisor> {
        std::fs::create_dir_all(&cfg.store_dir)?;
        let mut workers = Vec::with_capacity(cfg.shards.max(1));
        for shard in 0..cfg.shards.max(1) {
            workers.push(spawn_worker(&cfg, shard, 0)?);
        }
        Ok(Supervisor {
            cfg,
            workers,
            restarts_total: 0,
        })
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Bound address of a shard's current process.
    pub fn addr(&self, shard: usize) -> &str {
        &self.workers[shard].addr
    }

    /// All shard addresses, in shard order.
    pub fn addrs(&self) -> Vec<String> {
        self.workers.iter().map(|w| w.addr.clone()).collect()
    }

    /// OS pid of a shard's current process.
    pub fn pid(&self, shard: usize) -> u32 {
        self.workers[shard].child.id()
    }

    /// Restart generation of a shard (0 = original spawn).
    pub fn restart_gen(&self, shard: usize) -> u32 {
        self.workers[shard].restart_gen
    }

    /// Total respawns across all shards.
    pub fn restarts_total(&self) -> u64 {
        self.restarts_total
    }

    /// Sends a raw signal to one shard's process (the chaos harness's
    /// `SIGKILL`/`SIGSTOP`/`SIGCONT` injections).
    ///
    /// # Errors
    ///
    /// Returns the OS error when delivery fails.
    pub fn signal(&self, shard: usize, sig: i32) -> io::Result<()> {
        send_signal(self.pid(shard), sig)
    }

    /// Reaps dead workers and respawns each within the restart budget.
    /// Returns the shards that were respawned (their addresses have
    /// changed).
    ///
    /// # Errors
    ///
    /// Returns an error when a shard exhausted [`FleetConfig::max_restarts`]
    /// or a respawn fails.
    pub fn check(&mut self) -> io::Result<Vec<usize>> {
        let mut respawned = Vec::new();
        for shard in 0..self.workers.len() {
            let exited = self.workers[shard].child.try_wait()?.is_some();
            if !exited {
                continue;
            }
            let gen = self.workers[shard].restart_gen + 1;
            if gen > self.cfg.max_restarts {
                return Err(io::Error::other(format!(
                    "shard {shard} exceeded the restart budget ({} respawns)",
                    self.cfg.max_restarts
                )));
            }
            // Same store path: the respawn resumes from whatever the
            // dead process flushed.
            self.workers[shard] = spawn_worker(&self.cfg, shard, gen)?;
            self.restarts_total += 1;
            respawned.push(shard);
        }
        Ok(respawned)
    }

    /// Graceful fleet drain: forward `SIGTERM` to every worker, wait
    /// for each to exit (store compaction happens inside the worker's
    /// own drain), and `SIGKILL` any straggler past `timeout`.
    ///
    /// # Errors
    ///
    /// Returns an error naming the shards that had to be killed or
    /// exited non-zero.
    pub fn drain(mut self, timeout: Duration) -> io::Result<()> {
        for worker in &self.workers {
            let _ = send_signal(worker.child.id(), SIGTERM);
        }
        let deadline = Instant::now() + timeout;
        let mut failed = Vec::new();
        for (shard, worker) in self.workers.iter_mut().enumerate() {
            let status = loop {
                if let Some(status) = worker.child.try_wait()? {
                    break Some(status);
                }
                if Instant::now() >= deadline {
                    break None;
                }
                std::thread::sleep(Duration::from_millis(20));
            };
            match status {
                Some(status) if status.success() => {}
                Some(status) => failed.push(format!("shard {shard} exited {status}")),
                None => {
                    let _ = worker.child.kill();
                    let _ = worker.child.wait();
                    failed.push(format!("shard {shard} did not drain in time; killed"));
                }
            }
            // Drain any remaining worker output ("drained cleanly").
            if let Some(mut stdout) = worker.stdout.take() {
                let mut rest = String::new();
                let _ = stdout.read_to_string(&mut rest);
            }
        }
        if failed.is_empty() {
            Ok(())
        } else {
            Err(io::Error::other(failed.join("; ")))
        }
    }

    /// Abandons the pool without draining: `SIGKILL` everything. Used
    /// by tests' cleanup paths.
    pub fn kill_all(mut self) {
        for worker in &mut self.workers {
            let _ = worker.child.kill();
            let _ = worker.child.wait();
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        // Never leak worker processes past the supervisor, whatever
        // path dropped it (panic, early return, test failure).
        for worker in &mut self.workers {
            if worker
                .child
                .try_wait()
                .map(|s| s.is_none())
                .unwrap_or(false)
            {
                let _ = worker.child.kill();
                let _ = worker.child.wait();
            }
        }
    }
}

fn spawn_worker(cfg: &FleetConfig, shard: usize, generation: u32) -> io::Result<Worker> {
    let mut cmd = Command::new(&cfg.server_bin);
    cmd.arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--workers")
        .arg(cfg.worker_threads.max(1).to_string())
        .arg("--step-ceiling")
        .arg(cfg.step_ceiling.to_string())
        .arg("--store")
        .arg(cfg.store_path(shard))
        .arg("--shard-id")
        .arg(shard.to_string())
        .arg("--restart-gen")
        .arg(generation.to_string())
        .arg("--drain-grace-ms")
        .arg(cfg.drain_grace_ms.to_string())
        .arg("--keep-alive-requests")
        .arg(cfg.keep_alive_requests.to_string())
        .arg("--keep-alive-idle-ms")
        .arg(cfg.keep_alive_idle_ms.to_string());
    for sibling in 0..cfg.shards.max(1) {
        if sibling != shard {
            cmd.arg("--read-store").arg(cfg.store_path(sibling));
        }
    }
    if cfg.reduced {
        cmd.arg("--reduced");
    }
    // The worker's store wiring is fully explicit; a stray env var must
    // not silently redirect a shard.
    cmd.env_remove("VOLTNOISE_STORE")
        .env_remove("VOLTNOISE_READ_STORES");
    cmd.stdout(Stdio::piped()).stderr(Stdio::inherit());
    let mut child = cmd.spawn()?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| io::Error::other("worker stdout not captured"))?;
    let mut reader = BufReader::new(stdout);
    // The discovery line is printed after bind, so the kernel already
    // queues connections once it appears.
    let addr = match read_discovery_line(&mut reader, cfg.spawn_timeout) {
        Ok(addr) => addr,
        Err(e) => {
            let _ = child.kill();
            let _ = child.wait();
            return Err(io::Error::other(format!(
                "shard {shard} (gen {generation}) failed to start: {e}"
            )));
        }
    };
    Ok(Worker {
        child,
        addr,
        restart_gen: generation,
        stdout: Some(reader),
    })
}

fn read_discovery_line(
    reader: &mut BufReader<ChildStdout>,
    _timeout: Duration,
) -> io::Result<String> {
    // A blocking read is acceptable here: a healthy worker prints the
    // line immediately after bind, and a worker that dies instead
    // closes the pipe, which surfaces as EOF below.
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "worker exited before announcing its address",
            ));
        }
        if let Some(addr) = line.trim().strip_prefix("voltnoise-server listening on ") {
            return Ok(addr.to_string());
        }
    }
}

/// Paths that make up a fleet's store union — every shard's JSONL file
/// that currently exists under `store_dir`.
pub fn store_files(store_dir: &Path, shards: usize) -> Vec<PathBuf> {
    (0..shards)
        .map(|s| store_dir.join(format!("shard{s}.jsonl")))
        .filter(|p| p.is_file())
        .collect()
}
