//! Ablation studies for the design choices called out in DESIGN.md.
//!
//! 1. Edge-refined adaptive timestep vs uniform fine stepping (cost and
//!    accuracy of the transient solver);
//! 2. Two on-die domains bridged by the L3 vs a merged single domain
//!    (the source of the Fig. 13a clusters);
//! 3. Deep-trench eDRAM decap vs a legacy (pre-eDRAM) design (the
//!    first-droop shift of §V-A);
//! 4. The analytic IPC pre-filter vs power-evaluating every filtered
//!    sequence (the funnel's cost structure).

use crate::delta_i::{run_delta_i, DeltaIConfig};
use crate::propagation::CorrelationAnalysis;
use crate::signal_summary::SignalSummary;
use serde::{Deserialize, Serialize};
use voltnoise_pdn::ac::{log_space, AcAnalysis};
use voltnoise_pdn::topology::{ChipPdn, PdnParams, NUM_CORES};
use voltnoise_pdn::transient::{Probe, TransientConfig, TransientSolver};
use voltnoise_pdn::waveform::{CoreWaveform, MultiCoreDrive, StressWaveform, WaveMode};
use voltnoise_pdn::PdnError;
use voltnoise_system::chip::{Chip, ChipConfig};
use voltnoise_system::testbed::Testbed;

/// Ablation 1 result: timestep strategy comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepAblation {
    /// Steps taken by the edge-refined two-rate scheme.
    pub refined_steps: usize,
    /// Steps a uniform fine-step run takes.
    pub uniform_steps: usize,
    /// Relative error of the refined scheme's peak-to-peak reading vs the
    /// uniform reference.
    pub p2p_rel_error: f64,
}

/// Runs ablation 1 on a 6-core stressmark drive.
///
/// # Errors
///
/// Returns [`PdnError`] if a solve fails.
pub fn run_step_ablation(chip: &Chip) -> Result<StepAblation, PdnError> {
    let wave = StressWaveform {
        i_low: 8.0,
        i_high: 18.0,
        i_idle: 8.0,
        stim_period: 400e-9,
        duty: 0.5,
        rise_time: 2e-9,
        mode: WaveMode::FreeRun {
            phase: 0.0,
            period_skew_ppm: 0.0,
        },
    };
    let drive = MultiCoreDrive::new(vec![CoreWaveform::Stress(wave); NUM_CORES]);
    let probe = [Probe::NodeVoltage(chip.pdn().core_node(0))];

    let mut refined_cfg = TransientConfig::new(40e-6);
    refined_cfg.h_coarse = 20e-9;
    refined_cfg.h_fine = 0.5e-9;
    refined_cfg.refine_post = 25e-9;
    let mut solver = TransientSolver::new(chip.pdn().netlist())?;
    let refined = solver.run(&drive, &probe, &refined_cfg)?;

    let mut uniform_cfg = refined_cfg.clone();
    uniform_cfg.h_coarse = uniform_cfg.h_fine;
    let mut solver2 = TransientSolver::new(chip.pdn().netlist())?;
    let uniform = solver2.run(&drive, &probe, &uniform_cfg)?;

    let p_ref = uniform.stats[0].peak_to_peak();
    let p_fast = refined.stats[0].peak_to_peak();
    Ok(StepAblation {
        refined_steps: refined.steps,
        uniform_steps: uniform.steps,
        p2p_rel_error: (p_fast - p_ref).abs() / p_ref.max(1e-12),
    })
}

/// Ablation 2 result: cluster separation with and without the split-domain
/// topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainAblation {
    /// `mean_within - mean_between` correlation gap of the paper chip.
    pub split_domain_gap: f64,
    /// The same gap when the domains are electrically merged and the
    /// cycle-ripple coupling is uniform.
    pub merged_domain_gap: f64,
}

/// Runs ablation 2. Expensive: two ΔI campaigns.
///
/// # Errors
///
/// Returns [`PdnError`] if a solve fails.
pub fn run_domain_ablation(
    tb: &Testbed,
    campaign: &DeltaIConfig,
) -> Result<DomainAblation, PdnError> {
    let split = CorrelationAnalysis::from_dataset(&run_delta_i(tb, campaign)?);

    // Merged topology: near-zero bridge impedance and uniform coupling.
    let mut cfg = ChipConfig::default();
    cfg.pdn.r_l3 = 1e-9;
    cfg.pdn.l_l3 = 1e-16;
    cfg.hf.cross_domain_coupling = cfg.hf.same_domain_coupling;
    // Uniform skitters and grid (no variation) isolate the topology effect.
    cfg.seed = 0;
    let merged_chip = Chip::new(&cfg)?;
    // Reuse the testbed's sequences with the merged chip via a scoped clone.
    let merged_tb = Testbed::build(
        &voltnoise_stressmark::SearchConfig {
            ipc_keep: 40,
            eval_iterations: 100,
        },
        &cfg,
    )?
    .with_chip(merged_chip);
    let merged = CorrelationAnalysis::from_dataset(&run_delta_i(&merged_tb, campaign)?);

    Ok(DomainAblation {
        split_domain_gap: split.mean_within - split.mean_between,
        merged_domain_gap: merged.mean_within - merged.mean_between,
    })
}

/// Ablation 3 result: first-droop band of modern vs legacy decap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecapAblation {
    /// Strongest die-band resonance frequency of the deep-trench design.
    pub modern_first_droop_hz: f64,
    /// Strongest resonance frequency of the legacy (1/40 decap) design.
    pub legacy_first_droop_hz: f64,
}

/// Runs ablation 3.
///
/// # Errors
///
/// Returns [`PdnError`] if the AC solve fails.
pub fn run_decap_ablation() -> Result<DecapAblation, PdnError> {
    let band = |params: &PdnParams| -> Result<f64, PdnError> {
        let chip = ChipPdn::build(params)?;
        let ac = AcAnalysis::new(chip.netlist());
        let freqs = log_space(1e5, 500e6, 300)?;
        let prof = ac.sweep(chip.core_node(0), &freqs)?;
        Ok(SignalSummary::of_profile(&prof)?.peak_freq_hz)
    };
    Ok(DecapAblation {
        modern_first_droop_hz: band(&PdnParams::default())?,
        legacy_first_droop_hz: band(&PdnParams::legacy_decap())?,
    })
}

/// Ablation 4 result: funnel cost with and without the IPC pre-filter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FilterAblation {
    /// Power evaluations needed with the IPC filter.
    pub evals_with_filter: usize,
    /// Power evaluations needed without it (every microarch survivor).
    pub evals_without_filter: usize,
    /// Power of the winner found through the filtered funnel.
    pub filtered_winner_w: f64,
}

/// Summarizes ablation 4 from a testbed's search outcome.
pub fn run_filter_ablation(tb: &Testbed) -> FilterAblation {
    let s = tb.search();
    FilterAblation {
        evals_with_filter: s.after_ipc,
        evals_without_filter: s.after_microarch,
        filtered_winner_w: s.best.power_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refined_stepping_is_cheap_and_accurate() {
        let chip = Chip::paper_default();
        let a = run_step_ablation(&chip).unwrap();
        assert!(
            a.refined_steps * 3 < a.uniform_steps,
            "refined {} vs uniform {}",
            a.refined_steps,
            a.uniform_steps
        );
        assert!(a.p2p_rel_error < 0.05, "error {}", a.p2p_rel_error);
    }

    #[test]
    fn legacy_decap_moves_first_droop_above_5mhz() {
        let a = run_decap_ablation().unwrap();
        assert!(a.modern_first_droop_hz < 5e6);
        assert!(a.legacy_first_droop_hz > 5e6);
        assert!(a.legacy_first_droop_hz > 4.0 * a.modern_first_droop_hz);
    }

    #[test]
    fn ipc_filter_cuts_power_evaluations() {
        let tb = Testbed::fast();
        let a = run_filter_ablation(tb);
        assert!(a.evals_with_filter * 10 < a.evals_without_filter);
        assert!(a.filtered_winner_w > 15.0);
    }
}
