//! ROM error study: reduced-order macromodel accuracy vs error budget.
//!
//! Runs the drawer ΔI-step study once with the full-order solver and
//! once per candidate [`RomSpec`] budget, tabulating the order the
//! calibration settled on, the calibrated worst-case error it reports,
//! and the droop-figure gap actually observed against the full solve.
//! This is the empirical backing for the macromodel's error-budget
//! contract (DESIGN.md "Solve backends"): the achieved gap must sit
//! within the caller's budget while the step count drops by an order of
//! magnitude. Not part of the golden report — runnable on demand
//! (`rom-error`) and exercised by the bench harness.

use crate::experiment::{Experiment, ExperimentFailure};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use voltnoise_pdn::{PdnError, RomSpec, SolveSpec};
use voltnoise_system::engine::{DrawerJob, Engine};
use voltnoise_system::noise::{DrawerStepConfig, DrawerStepOutcome, NoiseOutcome};
use voltnoise_system::testbed::Testbed;

/// Configuration of the ROM error study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RomErrorConfig {
    /// The drawer step to solve (its `solve` field is overridden per
    /// row; the full-order reference forces [`SolveSpec::full`]).
    pub base: DrawerStepConfig,
    /// Error budgets (volts) to calibrate the macromodel against, one
    /// study row each.
    pub budgets_v: Vec<f64>,
}

impl RomErrorConfig {
    /// Paper-scale study: the default drawer window, three budgets
    /// spanning 4x.
    pub fn paper() -> RomErrorConfig {
        RomErrorConfig {
            base: DrawerStepConfig::default(),
            budgets_v: vec![4e-3, 2e-3, 1e-3],
        }
    }

    /// Reduced study for quick runs: a shorter window, the default
    /// budget only.
    pub fn reduced() -> RomErrorConfig {
        RomErrorConfig {
            base: DrawerStepConfig {
                window_s: 2e-6,
                ..DrawerStepConfig::default()
            },
            budgets_v: vec![1e-3],
        }
    }
}

/// One study row: a budget and what the macromodel achieved under it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RomErrorRow {
    /// The caller-supplied error budget (volts).
    pub budget_v: f64,
    /// Reduced order the calibration settled on.
    pub states: usize,
    /// Worst-case probe error the calibration measured (volts).
    pub calibrated_error_v: f64,
    /// Largest per-chip droop-depth gap vs the full-order solve (volts).
    pub droop_gap_v: f64,
    /// Transient steps the reduced solve took.
    pub steps: usize,
}

/// The assembled study: the full-order reference plus one row per
/// budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RomErrorStudy {
    /// The study configuration.
    pub config: RomErrorConfig,
    /// The full-order reference outcome.
    pub full: DrawerStepOutcome,
    /// One row per budget, in `budgets_v` order.
    pub rows: Vec<RomErrorRow>,
}

impl RomErrorStudy {
    /// Renders the study as budget/order/error rows.
    pub fn render(&self) -> String {
        let mut out = format!(
            "# ROM error study: drawer step, {} chips, {} MNA unknowns, full solve {} steps\n\
             budget_mv,states,calibrated_error_mv,droop_gap_mv,steps,step_ratio\n",
            self.config.base.drawer.chips, self.full.system_size, self.full.steps
        );
        for r in &self.rows {
            let ratio = self.full.steps as f64 / (r.steps.max(1)) as f64;
            out.push_str(&format!(
                "{:.3},{},{:.4},{:.4},{},{:.1}\n",
                r.budget_v * 1e3,
                r.states,
                r.calibrated_error_v * 1e3,
                r.droop_gap_v * 1e3,
                r.steps,
                ratio
            ));
        }
        out
    }
}

fn droop_gap(full: &DrawerStepOutcome, rom: &DrawerStepOutcome) -> f64 {
    full.droop_depth_v
        .iter()
        .zip(&rom.droop_depth_v)
        .map(|(a, b)| (a - b).abs())
        .fold(
            (full.source_core_droop_v - rom.source_core_droop_v).abs(),
            f64::max,
        )
}

fn assemble_study<F>(cfg: &RomErrorConfig, mut solve: F) -> Result<RomErrorStudy, PdnError>
where
    F: FnMut(DrawerStepConfig) -> Result<DrawerStepOutcome, PdnError>,
{
    let full = solve(DrawerStepConfig {
        solve: SolveSpec::full(),
        ..cfg.base.clone()
    })?;
    let mut rows = Vec::with_capacity(cfg.budgets_v.len());
    for &budget_v in &cfg.budgets_v {
        let spec = RomSpec {
            budget_v,
            ..RomSpec::default()
        };
        let rom = solve(DrawerStepConfig {
            solve: SolveSpec::reduced(spec),
            ..cfg.base.clone()
        })?;
        rows.push(RomErrorRow {
            budget_v,
            states: rom.rom_states,
            calibrated_error_v: rom.rom_max_error_v,
            droop_gap_v: droop_gap(&full, &rom),
            steps: rom.steps,
        });
    }
    Ok(RomErrorStudy {
        config: cfg.clone(),
        full,
        rows,
    })
}

/// The ROM error study experiment. Each (full or reduced) drawer solve
/// routes through [`Engine::run_drawer`], so repeat runs on a shared
/// engine assemble from the drawer memo.
#[derive(Debug, Clone)]
pub struct RomErrorExperiment {
    /// The study configuration to run.
    pub cfg: RomErrorConfig,
}

impl Experiment for RomErrorExperiment {
    type Artifact = RomErrorStudy;

    fn id(&self) -> &'static str {
        "rom-error"
    }

    fn title(&self) -> &'static str {
        "ROM study: macromodel error vs budget on the drawer step"
    }

    /// Direct-solve fallback used only when the experiment is driven
    /// through the default job pipeline (no engine in scope); the
    /// overridden [`Experiment::run`] is the memoized path.
    fn assemble(
        &self,
        _tb: &Testbed,
        _outcomes: &[Arc<NoiseOutcome>],
    ) -> Result<RomErrorStudy, PdnError> {
        assemble_study(&self.cfg, |c| DrawerJob::new(c)?.solve())
    }

    fn render(&self, artifact: &RomErrorStudy) -> String {
        artifact.render()
    }

    fn run(&self, _tb: &Testbed, engine: &Engine) -> Result<RomErrorStudy, PdnError> {
        assemble_study(&self.cfg, |c| {
            Ok((*engine.run_drawer(&DrawerJob::new(c)?)?).clone())
        })
    }

    fn run_settled(
        &self,
        tb: &Testbed,
        engine: &Engine,
    ) -> Result<RomErrorStudy, ExperimentFailure> {
        self.run(tb, engine).map_err(ExperimentFailure::from)
    }
}

/// Runs the ROM error study on the shared engine.
///
/// # Errors
///
/// Returns [`PdnError`] if a solve fails or a budget cannot be met at
/// the maximum permitted order ([`PdnError::RomBudget`]).
pub fn run_rom_error_study(cfg: &RomErrorConfig) -> Result<RomErrorStudy, PdnError> {
    RomErrorExperiment { cfg: cfg.clone() }.run(Testbed::fast(), Engine::shared())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_study_meets_budgets_and_saves_steps() {
        let cfg = RomErrorConfig::reduced();
        let study = run_rom_error_study(&cfg).expect("study");
        assert_eq!(study.rows.len(), cfg.budgets_v.len());
        for row in &study.rows {
            assert!(row.states > 0, "ROM path must report its order");
            assert!(
                row.calibrated_error_v <= row.budget_v,
                "calibrated error {} above budget {}",
                row.calibrated_error_v,
                row.budget_v
            );
            assert!(
                row.droop_gap_v <= 3.0 * row.budget_v,
                "droop gap {} far above budget {}",
                row.droop_gap_v,
                row.budget_v
            );
            assert!(
                row.steps < study.full.steps,
                "reduced solve should take fewer steps ({} vs {})",
                row.steps,
                study.full.steps
            );
        }
        let rendered = study.render();
        assert!(rendered.contains("budget_mv"));
        assert!(rendered.lines().count() >= 2 + cfg.budgets_v.len());
    }

    #[test]
    fn experiment_is_registered() {
        let entry = crate::experiment::find("rom-error").expect("registered");
        assert!(!entry.in_report, "rom-error must stay out of the report");
    }

    #[test]
    fn tighter_budget_never_lowers_order() {
        let base = RomErrorConfig::reduced().base;
        let cfg = RomErrorConfig {
            base,
            budgets_v: vec![4e-3, 1e-3],
        };
        let study = run_rom_error_study(&cfg).expect("study");
        assert!(study.rows[1].states >= study.rows[0].states);
    }
}
