//! Regenerates paper Fig. 10: noise vs maximum allowed misalignment
//! between the per-core stressmarks (62.5 ns TOD tick granularity).

use voltnoise::prelude::*;
use voltnoise_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let tb = if opts.reduced { Testbed::fast() } else { Testbed::shared() };
    let cfg = if opts.reduced { MisalignConfig::reduced() } else { MisalignConfig::paper() };
    let res = run_misalignment(tb, &cfg).expect("misalignment sweep runs");
    opts.finish(&res.render(), &res);
}
