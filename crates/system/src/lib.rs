#![warn(missing_docs)]
// Library code must surface failures as typed errors, never panic via
// `unwrap` or `expect`. Test builds (`cfg(test)`) are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # voltnoise-system
//!
//! The assembled six-core system of the `voltnoise` workspace: chip
//! instances with process variation, the TOD synchronization facilities,
//! the workload-mapping vocabulary, the noise experiment engine, and the
//! two optimization mechanisms the paper's §VII proposes.
//!
//! - [`chip`] — chip = PDN + per-core skitters + critical path, with
//!   seeded manufacturing variation (seed 0 reproduces the paper chip
//!   whose cores 2 and 4 are noisiest);
//! - [`tod`] — 62.5 ns-granularity TOD sync conditions and the
//!   misalignment-spreading helper of Fig. 10;
//! - [`workload`] — idle / medium / max workload classes, distributions
//!   and mapping enumeration (§V-D, Fig. 11);
//! - [`noise`] — the simulation kernel: stressmarks → PDN transient +
//!   coherent cycle-ripple model → per-core skitter %p2p readings;
//! - [`engine`] — content-keyed [`engine::SimJob`]s, the parallel
//!   scoped-thread executor and the sharded memo cache every experiment
//!   runs through;
//! - [`fault`] — the engine's failure vocabulary: captured
//!   [`fault::JobFault`]s, the [`fault::RetryPolicy`], and the
//!   deterministic [`fault::FaultInjector`] test harness;
//! - [`store`] — the append-only persistent result store
//!   ([`store::ResultStore`]) that lets an interrupted campaign resume
//!   without re-solving (attach via `Engine::with_store` or the
//!   `VOLTNOISE_STORE` environment variable);
//! - [`telemetry`] — engine observability: always-on solver work
//!   counters, trace-gated wall-clock histograms (`VOLTNOISE_TRACE`),
//!   and the `VOLTNOISE_STATS_PATH` JSON export;
//! - [`testbed`] — ISA + EPI profile + searched sequences + chip, cached
//!   for experiments;
//! - [`mapping`] — noise-aware workload mapping policy (§VII-A);
//! - [`guardband`] — utilization-based dynamic guard-banding (§VII-B).
//!
//! # Examples
//!
//! ```no_run
//! use voltnoise_system::noise::{run_noise, CoreLoad, NoiseRunConfig};
//! use voltnoise_system::testbed::Testbed;
//!
//! let tb = Testbed::shared();
//! let sm = tb.max_stressmark(2.5e6, Some(voltnoise_stressmark::SyncSpec::paper_default()));
//! let loads: Vec<CoreLoad> = (0..6).map(|_| CoreLoad::Stressmark(sm.clone())).collect();
//! let outcome = run_noise(tb.chip(), &loads, &NoiseRunConfig::default()).unwrap();
//! println!("worst-case noise: {:.1} %p2p", outcome.max_pct_p2p());
//! ```

pub mod chip;
pub mod dither;
pub mod engine;
pub mod fault;
pub mod guardband;
pub mod mapping;
pub mod mitigation;
pub mod noise;
pub mod population;
pub mod rack;
pub mod scheduler;
pub mod site;
pub mod store;
pub mod telemetry;
pub mod testbed;
pub mod tod;
pub mod workload;

pub use chip::{Chip, ChipConfig, HfNoiseParams};
pub use dither::{simulate_dither, AlignmentComparison, DitherOutcome};
pub use engine::{
    chip_signature, try_chip_signature, DrawerJob, Engine, EngineStats, JobBatch, JobKey,
    JobTarget, LoadKey, SimJob,
};
pub use fault::{FaultInjector, FaultKind, InjectedFault, JobFault, RetryPolicy};
pub use guardband::{energy_saving, GuardbandController, GuardbandTable};
pub use mapping::{
    evaluate_all_mappings, evaluate_all_mappings_on, evaluate_mapping, mapping_job, naive_mapping,
    MappingEvaluation, NoiseAwareMapper,
};
pub use mitigation::{evaluate_governor, GlobalNoiseGovernor, GovernorConfig, GovernorEvaluation};
pub use noise::{
    run_drawer_step_instrumented, run_noise, run_noise_instrumented, CoreLoad, DrawerStepConfig,
    DrawerStepOutcome, NoiseOutcome, NoiseRunConfig,
};
pub use population::PopulationStudy;
pub use rack::{run_rack_noise, run_rack_noise_instrumented, RackScenario};
pub use scheduler::{
    placement_of_occupancy, replay, synthetic_trace, EngineNoiseModel, Job, NaivePolicy,
    NoiseAwarePolicy, NoiseModel, NoiseTable, Occupancy, PlacementPolicy, ScheduleOutcome,
};
pub use site::{Site, SiteSpace, SiteVec};
pub use store::ResultStore;
pub use telemetry::{
    export_stats_json, set_trace, trace_enabled, EngineTelemetry, LogHistogram, PhaseTimes,
    SolverCounters,
};
pub use testbed::Testbed;
pub use tod::{spread_offsets, TodSync};
pub use workload::{
    all_distributions, mappings_of, Distribution, Mapping, Placement, WorkloadKind,
};
