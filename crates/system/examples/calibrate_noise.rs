//! Dev tool: prints the headline noise figures used to calibrate the
//! chip model against the paper's reported values.
use voltnoise_stressmark::SyncSpec;
use voltnoise_system::noise::{run_noise, CoreLoad, NoiseRunConfig};
use voltnoise_system::testbed::Testbed;

fn main() {
    let tb = Testbed::fast();
    let cfg = NoiseRunConfig {
        window_s: Some(80e-6),
        ..NoiseRunConfig::default()
    };
    let max = tb.max_sequence();
    let min = tb.min_sequence();
    println!(
        "max seq: {:?} power {:.2} W ipc {:.2}",
        max.mnemonics, max.power_w, max.ipc
    );
    println!("min seq: {:?} power {:.2} W", min.mnemonics, min.power_w);
    let sm = tb.max_stressmark(2.5e6, None);
    println!(
        "dI/dt: i_high {:.1} A  i_low {:.1} A  dI {:.1} A",
        sm.i_high_a,
        sm.i_low_a,
        sm.delta_i()
    );

    let all = |sm: voltnoise_stressmark::CompiledStressmark| -> [CoreLoad; 6] {
        std::array::from_fn(|_| CoreLoad::Stressmark(sm.clone()))
    };
    for (label, freq, sync) in [
        ("unsync 45kHz ", 45e3, None),
        ("unsync 300kHz", 300e3, None),
        ("unsync 2.5MHz", 2.5e6, None),
        ("unsync 10MHz ", 10e6, None),
        ("sync   45kHz ", 45e3, Some(SyncSpec::paper_default())),
        ("sync   300kHz", 300e3, Some(SyncSpec::paper_default())),
        ("sync   2.5MHz", 2.5e6, Some(SyncSpec::paper_default())),
    ] {
        let out = run_noise(tb.chip(), &all(tb.max_stressmark(freq, sync)), &cfg).unwrap();
        let p: Vec<String> = out.pct_p2p.iter().map(|v| format!("{v:.1}")).collect();
        println!(
            "{label}: max {:.1} %p2p  per-core [{}]  vmin {:.3}",
            out.max_pct_p2p(),
            p.join(","),
            out.v_min.iter().cloned().fold(f64::INFINITY, f64::min)
        );
    }
    // misalignment at 2.5 MHz
    for ticks in [0u64, 1, 2, 4, 10] {
        let mut loads: [CoreLoad; 6] = std::array::from_fn(|_| CoreLoad::Idle);
        let offs = voltnoise_system::tod::spread_offsets(6, ticks);
        for (i, l) in loads.iter_mut().enumerate() {
            let mut s = SyncSpec::paper_default();
            s.offset_ticks = offs[i] as u32;
            *l = CoreLoad::Stressmark(tb.max_stressmark(2.5e6, Some(s)));
        }
        let out = run_noise(tb.chip(), &loads, &cfg).unwrap();
        println!(
            "misalign {:>5.1} ns: max {:.1} %p2p",
            ticks as f64 * 62.5,
            out.max_pct_p2p()
        );
    }
}
