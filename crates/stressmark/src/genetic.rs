//! Genetic-algorithm sequence search — the optimization-layer extension
//! the paper points at: "It would be possible to implement optimization
//! algorithms — such as the genetic algorithms employed in previous works
//! \[26\] — on top of the presented solution" (§IV-C).
//!
//! The GA evolves length-[`SEQ_LEN`] sequences
//! over the nine selected candidates, using measured loop power as the
//! fitness. It is an *alternative* to the exhaustive funnel of
//! [`crate::search`]; the tests check it reaches the funnel winner's
//! power within a few percent at a fraction of the evaluations.

use crate::filter::{microarch_filter, FilterConfig, SEQ_LEN};
use crate::search::SequenceEval;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use voltnoise_uarch::isa::{Isa, Opcode};
use voltnoise_uarch::kernel::Kernel;
use voltnoise_uarch::pipeline::CoreConfig;

/// GA configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Individuals per generation.
    pub population: usize,
    /// Generations to evolve.
    pub generations: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Elite individuals copied unchanged each generation.
    pub elites: usize,
    /// Loop iterations per fitness evaluation.
    pub eval_iterations: usize,
    /// RNG seed.
    pub seed: u64,
    /// When set, the search serializes its full state (population, RNG,
    /// fitness cache, convergence history) here after every
    /// `checkpoint_every`-th generation, atomically (tmp file + rename).
    /// A write failure is reported on stderr and skipped — checkpointing
    /// never fails the search itself.
    pub checkpoint_path: Option<PathBuf>,
    /// Generations between checkpoint writes (clamped to ≥ 1; the final
    /// generation always checkpoints when a path is set).
    pub checkpoint_every: usize,
    /// When set, the search first tries to restore state from this file
    /// and continues from the saved generation — bit-identically to a
    /// run that was never interrupted. A missing file starts fresh
    /// silently (first run of a resumable campaign); a corrupt or
    /// incompatible file is reported on stderr and starts fresh.
    pub resume_from: Option<PathBuf>,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 40,
            generations: 25,
            mutation_rate: 0.15,
            tournament: 3,
            elites: 2,
            eval_iterations: 120,
            seed: 1,
            checkpoint_path: None,
            checkpoint_every: 1,
            resume_from: None,
        }
    }
}

/// The scalar parameters a checkpoint echoes so a resume can verify it
/// is continuing the same search. `generations` is deliberately absent:
/// resuming with a larger horizon *extends* a finished campaign, which
/// is exactly the useful case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GaParams {
    population: usize,
    mutation_rate: f64,
    tournament: usize,
    elites: usize,
    eval_iterations: usize,
    seed: u64,
}

impl GaParams {
    fn of(cfg: &GaConfig) -> GaParams {
        GaParams {
            population: cfg.population,
            mutation_rate: cfg.mutation_rate,
            tournament: cfg.tournament,
            elites: cfg.elites,
            eval_iterations: cfg.eval_iterations,
            seed: cfg.seed,
        }
    }
}

/// On-disk GA search state. Genomes are stored as candidate opcode
/// indices (`Opcode::index()` as `u16`), which stay meaningful as long
/// as the candidate alphabet is unchanged — the `candidates` echo lets
/// a resume detect an alphabet mismatch and refuse the checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GaCheckpoint {
    version: u32,
    params: GaParams,
    candidates: Vec<u16>,
    /// Next generation to run (all generations `< generation` are done).
    generation: usize,
    rng_state: [u64; 4],
    population: Vec<Vec<u16>>,
    best_genome: Vec<u16>,
    best_fit: f64,
    evaluations: usize,
    history: Vec<f64>,
    /// Fitness cache, sorted by key for deterministic bytes.
    cache: Vec<(Vec<u16>, f64)>,
}

const GA_CHECKPOINT_VERSION: u32 = 1;

fn encode_genome(genome: &[Opcode]) -> Vec<u16> {
    genome.iter().map(|op| op.index() as u16).collect()
}

fn write_checkpoint(path: &Path, ckpt: &GaCheckpoint) {
    let attempt = || -> std::io::Result<()> {
        let json = serde_json::to_string(ckpt)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    };
    if let Err(e) = attempt() {
        eprintln!(
            "voltnoise: GA checkpoint write to {} failed ({e}); continuing without",
            path.display()
        );
    }
}

/// Tries to load and validate a checkpoint. `None` means "start fresh":
/// silently for a missing file, with a stderr report for a corrupt or
/// incompatible one.
fn load_checkpoint(path: &Path, params: &GaParams, candidates: &[u16]) -> Option<GaCheckpoint> {
    let raw = match std::fs::read_to_string(path) {
        Ok(raw) => raw,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
        Err(e) => {
            eprintln!(
                "voltnoise: GA checkpoint {} unreadable ({e}); starting fresh",
                path.display()
            );
            return None;
        }
    };
    let ckpt: GaCheckpoint = match serde_json::from_str(&raw) {
        Ok(c) => c,
        Err(e) => {
            eprintln!(
                "voltnoise: GA checkpoint {} corrupt ({e}); starting fresh",
                path.display()
            );
            return None;
        }
    };
    if ckpt.version != GA_CHECKPOINT_VERSION
        || ckpt.params != *params
        || ckpt.candidates != candidates
        || ckpt.population.len() != params.population
        || ckpt.population.iter().any(|g| g.len() != SEQ_LEN)
        || ckpt.best_genome.len() != SEQ_LEN
    {
        eprintln!(
            "voltnoise: GA checkpoint {} does not match this search \
             (version/params/candidates differ); starting fresh",
            path.display()
        );
        return None;
    }
    Some(ckpt)
}

/// Outcome of a GA run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaOutcome {
    /// The fittest sequence found.
    pub best: SequenceEval,
    /// Total fitness evaluations performed (cache misses only).
    pub evaluations: usize,
    /// Best power per generation, for convergence plots.
    pub history: Vec<f64>,
}

type Genome = [Opcode; SEQ_LEN];

fn evaluate(isa: &Isa, core: &CoreConfig, genome: &Genome, iterations: usize) -> SequenceEval {
    let m = Kernel::from_sequence("ga_eval", genome.to_vec(), iterations).run(isa, core);
    SequenceEval {
        body: genome.to_vec(),
        mnemonics: genome
            .iter()
            .map(|&op| isa.def(op).mnemonic.clone())
            .collect(),
        ipc: m.ipc,
        power_w: m.avg_power_w,
        current_a: m.avg_current_a,
    }
}

/// Runs the GA over the candidate alphabet.
///
/// Individuals violating the microarchitectural filter are penalized
/// (fitness = measured power × 0.5) rather than discarded, which keeps
/// the search space connected while steering toward feasible sequences.
///
/// # Panics
///
/// Panics if `candidates` is empty or the population/tournament are zero.
pub fn ga_search(isa: &Isa, core: &CoreConfig, candidates: &[Opcode], cfg: &GaConfig) -> GaOutcome {
    assert!(!candidates.is_empty(), "need candidates");
    assert!(
        cfg.population >= 2 && cfg.tournament >= 1,
        "degenerate GA config"
    );
    let filter = FilterConfig::default();
    let params = GaParams::of(cfg);
    let cand_codes = encode_genome(candidates);
    let op_of_code: HashMap<u16, Opcode> = candidates
        .iter()
        .map(|&op| (op.index() as u16, op))
        .collect();
    let decode_genome = |codes: &[u16]| -> Option<Genome> {
        let ops: Vec<Opcode> = codes
            .iter()
            .map(|c| op_of_code.get(c).copied())
            .collect::<Option<_>>()?;
        ops.try_into().ok()
    };

    // Restore a prior campaign's state, or start fresh. All mutable
    // search state lives in these bindings so a checkpoint captures the
    // search completely.
    let restored = cfg
        .resume_from
        .as_deref()
        .and_then(|path| load_checkpoint(path, &params, &cand_codes))
        .and_then(|ckpt| {
            let population: Option<Vec<Genome>> =
                ckpt.population.iter().map(|g| decode_genome(g)).collect();
            let best_genome = decode_genome(&ckpt.best_genome);
            match (population, best_genome) {
                (Some(p), Some(b)) => Some((ckpt, p, b)),
                _ => {
                    eprintln!(
                        "voltnoise: GA checkpoint genome outside the candidate \
                         alphabet; starting fresh"
                    );
                    None
                }
            }
        });

    let mut rng;
    let mut cache: HashMap<Vec<u16>, f64>;
    let mut evaluations;
    let mut population: Vec<Genome>;
    let mut history;
    let mut best_genome;
    let mut best_fit;
    let start_gen;
    match restored {
        Some((ckpt, pop, best)) => {
            rng = SmallRng::from_state(ckpt.rng_state);
            cache = ckpt.cache.into_iter().collect();
            evaluations = ckpt.evaluations;
            population = pop;
            history = ckpt.history;
            best_genome = best;
            best_fit = ckpt.best_fit;
            start_gen = ckpt.generation;
        }
        None => {
            rng = SmallRng::seed_from_u64(cfg.seed);
            cache = HashMap::new();
            evaluations = 0;
            let random_genome = |rng: &mut SmallRng| -> Genome {
                std::array::from_fn(|_| candidates[rng.gen_range(0..candidates.len())])
            };
            population = (0..cfg.population)
                .map(|_| random_genome(&mut rng))
                .collect();
            history = Vec::with_capacity(cfg.generations);
            best_genome = population[0];
            best_fit = f64::NEG_INFINITY;
            start_gen = 0;
        }
    }

    let fitness_of =
        |genome: &Genome, cache: &mut HashMap<Vec<u16>, f64>, evaluations: &mut usize| -> f64 {
            let key = encode_genome(genome);
            if let Some(&f) = cache.get(&key) {
                return f;
            }
            *evaluations += 1;
            let power = evaluate(isa, core, genome, cfg.eval_iterations).power_w;
            let fit = if microarch_filter(isa, core, &filter, genome) {
                power
            } else {
                power * 0.5
            };
            cache.insert(key, fit);
            fit
        };

    for gen in start_gen..cfg.generations {
        let fits: Vec<f64> = population
            .iter()
            .map(|g| fitness_of(g, &mut cache, &mut evaluations))
            .collect();
        // Track the best feasible individual.
        for (g, &f) in population.iter().zip(&fits) {
            if f > best_fit {
                best_fit = f;
                best_genome = *g;
            }
        }
        history.push(best_fit);

        // Elitism: keep the top individuals.
        let mut order: Vec<usize> = (0..population.len()).collect();
        order.sort_by(|&a, &b| fits[b].total_cmp(&fits[a]));
        let mut next: Vec<Genome> = order
            .iter()
            .take(cfg.elites)
            .map(|&i| population[i])
            .collect();

        // Tournament selection + single-point crossover + mutation.
        let select = |rng: &mut SmallRng| -> Genome {
            let mut best_i = rng.gen_range(0..population.len());
            for _ in 1..cfg.tournament {
                let i = rng.gen_range(0..population.len());
                if fits[i] > fits[best_i] {
                    best_i = i;
                }
            }
            population[best_i]
        };
        while next.len() < cfg.population {
            let a = select(&mut rng);
            let b = select(&mut rng);
            let cut = rng.gen_range(1..SEQ_LEN);
            let mut child: Genome = std::array::from_fn(|k| if k < cut { a[k] } else { b[k] });
            for gene in child.iter_mut() {
                if rng.gen::<f64>() < cfg.mutation_rate {
                    *gene = candidates[rng.gen_range(0..candidates.len())];
                }
            }
            next.push(child);
        }
        population = next;

        if let Some(path) = &cfg.checkpoint_path {
            let done = gen + 1;
            if done % cfg.checkpoint_every.max(1) == 0 || done == cfg.generations {
                let mut cache_vec: Vec<(Vec<u16>, f64)> =
                    cache.iter().map(|(k, &v)| (k.clone(), v)).collect();
                cache_vec.sort_by(|a, b| a.0.cmp(&b.0));
                write_checkpoint(
                    path,
                    &GaCheckpoint {
                        version: GA_CHECKPOINT_VERSION,
                        params: params.clone(),
                        candidates: cand_codes.clone(),
                        generation: done,
                        rng_state: rng.state(),
                        population: population.iter().map(|g| encode_genome(g)).collect(),
                        best_genome: encode_genome(&best_genome),
                        best_fit,
                        evaluations,
                        history: history.clone(),
                        cache: cache_vec,
                    },
                );
            }
        }
    }

    GaOutcome {
        best: evaluate(isa, core, &best_genome, cfg.eval_iterations),
        evaluations,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::select_candidates;
    use crate::search::{find_max_power_sequence, SearchConfig};
    use std::sync::OnceLock;
    use voltnoise_uarch::epi::EpiProfile;

    struct Fx {
        isa: Isa,
        core: CoreConfig,
        candidates: Vec<Opcode>,
        exhaustive_best_w: f64,
    }

    fn fx() -> &'static Fx {
        static CELL: OnceLock<Fx> = OnceLock::new();
        CELL.get_or_init(|| {
            let isa = Isa::zlike();
            let core = CoreConfig::default();
            let profile = EpiProfile::generate(&isa, &core);
            let candidates: Vec<Opcode> = select_candidates(&isa, &profile)
                .iter()
                .map(|c| c.opcode)
                .collect();
            let outcome = find_max_power_sequence(
                &isa,
                &core,
                &profile,
                &SearchConfig {
                    ipc_keep: 60,
                    eval_iterations: 120,
                },
            );
            Fx {
                isa,
                core,
                candidates,
                exhaustive_best_w: outcome.best.power_w,
            }
        })
    }

    #[test]
    fn ga_approaches_exhaustive_winner_with_fewer_evaluations() {
        let f = fx();
        let out = ga_search(&f.isa, &f.core, &f.candidates, &GaConfig::default());
        let rel = out.best.power_w / f.exhaustive_best_w;
        assert!(
            rel > 0.95,
            "GA best {:.2} W vs exhaustive {:.2} W",
            out.best.power_w,
            f.exhaustive_best_w
        );
        // Far fewer evaluations than the 531 441-combination enumeration
        // and even than the funnel's final stage.
        assert!(out.evaluations < 1200, "evaluations = {}", out.evaluations);
    }

    #[test]
    fn ga_is_deterministic_per_seed() {
        let f = fx();
        let cfg = GaConfig {
            generations: 6,
            population: 16,
            ..GaConfig::default()
        };
        let a = ga_search(&f.isa, &f.core, &f.candidates, &cfg);
        let b = ga_search(&f.isa, &f.core, &f.candidates, &cfg);
        assert_eq!(a.best.body, b.best.body);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn convergence_history_is_non_decreasing() {
        let f = fx();
        let cfg = GaConfig {
            generations: 10,
            population: 20,
            ..GaConfig::default()
        };
        let out = ga_search(&f.isa, &f.core, &f.candidates, &cfg);
        assert!(out.history.windows(2).all(|w| w[1] >= w[0] - 1e-12));
    }

    fn temp_ckpt(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("voltnoise-ga-{tag}-{}.json", std::process::id()))
    }

    #[test]
    fn resume_continues_bit_identically() {
        let f = fx();
        let path = temp_ckpt("resume");
        let _ = std::fs::remove_file(&path);
        let base_cfg = GaConfig {
            generations: 6,
            population: 16,
            ..GaConfig::default()
        };
        let uninterrupted = ga_search(&f.isa, &f.core, &f.candidates, &base_cfg);

        // Simulated crash: run only 3 generations, checkpointing as we go.
        let first_half = ga_search(
            &f.isa,
            &f.core,
            &f.candidates,
            &GaConfig {
                generations: 3,
                checkpoint_path: Some(path.clone()),
                ..base_cfg.clone()
            },
        );
        assert!(path.exists(), "checkpoint must have been written");

        // Resume to the full horizon: the continuation must be
        // bit-identical to the run that was never interrupted.
        let resumed = ga_search(
            &f.isa,
            &f.core,
            &f.candidates,
            &GaConfig {
                resume_from: Some(path.clone()),
                ..base_cfg
            },
        );
        assert_eq!(resumed.best.body, uninterrupted.best.body);
        assert_eq!(resumed.history.len(), uninterrupted.history.len());
        for (a, b) in resumed.history.iter().zip(&uninterrupted.history) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // The fitness cache travels in the checkpoint, so the total
        // evaluation count matches too (no duplicate work on resume).
        assert_eq!(resumed.evaluations, uninterrupted.evaluations);
        assert!(first_half.evaluations < uninterrupted.evaluations);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_checkpoint_starts_fresh() {
        let f = fx();
        let path = temp_ckpt("corrupt");
        std::fs::write(&path, "{ not json at all").unwrap();
        let cfg = GaConfig {
            generations: 4,
            population: 12,
            resume_from: Some(path.clone()),
            ..GaConfig::default()
        };
        let resumed = ga_search(&f.isa, &f.core, &f.candidates, &cfg);
        let fresh = ga_search(
            &f.isa,
            &f.core,
            &f.candidates,
            &GaConfig {
                resume_from: None,
                ..cfg
            },
        );
        assert_eq!(resumed.best.body, fresh.best.body);
        assert_eq!(resumed.evaluations, fresh.evaluations);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_checkpoint_starts_fresh() {
        let f = fx();
        let cfg = GaConfig {
            generations: 4,
            population: 12,
            resume_from: Some(temp_ckpt("never-written")),
            ..GaConfig::default()
        };
        let resumed = ga_search(&f.isa, &f.core, &f.candidates, &cfg);
        let fresh = ga_search(
            &f.isa,
            &f.core,
            &f.candidates,
            &GaConfig {
                resume_from: None,
                ..cfg
            },
        );
        assert_eq!(resumed.best.body, fresh.best.body);
        assert_eq!(resumed.evaluations, fresh.evaluations);
    }

    #[test]
    fn mismatched_params_reject_checkpoint() {
        let f = fx();
        let path = temp_ckpt("mismatch");
        let _ = std::fs::remove_file(&path);
        ga_search(
            &f.isa,
            &f.core,
            &f.candidates,
            &GaConfig {
                generations: 2,
                population: 12,
                checkpoint_path: Some(path.clone()),
                ..GaConfig::default()
            },
        );
        // A different seed is a different search: the checkpoint must be
        // refused, not silently continued.
        let cfg = GaConfig {
            generations: 3,
            population: 12,
            seed: 99,
            resume_from: Some(path.clone()),
            ..GaConfig::default()
        };
        let resumed = ga_search(&f.isa, &f.core, &f.candidates, &cfg);
        let fresh = ga_search(
            &f.isa,
            &f.core,
            &f.candidates,
            &GaConfig {
                resume_from: None,
                ..cfg
            },
        );
        assert_eq!(resumed.best.body, fresh.best.body);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ga_winner_is_microarchitecturally_feasible() {
        let f = fx();
        let out = ga_search(&f.isa, &f.core, &f.candidates, &GaConfig::default());
        assert!(microarch_filter(
            &f.isa,
            &f.core,
            &FilterConfig::default(),
            &out.best.body
        ));
    }
}
