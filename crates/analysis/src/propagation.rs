//! Inter-core noise propagation (paper §VI: Figs. 13a, 13b, 14).

use crate::delta_i::DeltaIDataset;
use crate::experiment::Experiment;
use crate::experiment::ExperimentFailure;
use crate::stats::CorrelationMatrix;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use voltnoise_measure::scope::ScopeTrace;
use voltnoise_pdn::topology::NUM_CORES;
use voltnoise_pdn::transient::{Drive, Probe, TransientConfig, TransientSolver};
use voltnoise_pdn::PdnError;
use voltnoise_stressmark::SyncSpec;
use voltnoise_system::chip::Chip;
use voltnoise_system::engine::{DrawerJob, Engine, SimJob};
use voltnoise_system::noise::{DrawerStepConfig, DrawerStepOutcome, NoiseOutcome, NoiseRunConfig};
use voltnoise_system::testbed::Testbed;
use voltnoise_system::workload::{Mapping, WorkloadKind};

/// Fig. 13a: the inter-core correlation analysis over a ΔI campaign
/// dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelationAnalysis {
    /// The 6×6 correlation matrix.
    pub matrix: CorrelationMatrix,
    /// Detected cluster containing core 0.
    pub cluster_a: Vec<usize>,
    /// The other cluster.
    pub cluster_b: Vec<usize>,
    /// Mean correlation within clusters.
    pub mean_within: f64,
    /// Mean correlation across clusters.
    pub mean_between: f64,
}

impl CorrelationAnalysis {
    /// Computes the analysis from a ΔI dataset.
    pub fn from_dataset(data: &DeltaIDataset) -> Self {
        let matrix = CorrelationMatrix::from_series(&data.per_core_series());
        let (cluster_a, cluster_b) = matrix.two_clusters();
        let mean_within = (matrix.mean_within(&cluster_a) + matrix.mean_within(&cluster_b)) / 2.0;
        let mean_between = matrix.mean_between(&cluster_a, &cluster_b);
        CorrelationAnalysis {
            matrix,
            cluster_a,
            cluster_b,
            mean_within,
            mean_between,
        }
    }

    /// Renders the Fig. 13a matrix.
    pub fn render(&self) -> String {
        let mut out = String::from("# Fig. 13a: inter-core noise correlation matrix\ncore");
        for j in 0..NUM_CORES {
            out.push_str(&format!(",core{j}"));
        }
        out.push('\n');
        for i in 0..NUM_CORES {
            out.push_str(&format!("core{i}"));
            for j in 0..NUM_CORES {
                out.push_str(&format!(",{:.3}", self.matrix.get(i, j)));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "# clusters: {:?} vs {:?} (within {:.3}, between {:.3}, min off-diag {:.3})\n",
            self.cluster_a,
            self.cluster_b,
            self.mean_within,
            self.mean_between,
            self.matrix.min_off_diagonal()
        ));
        out
    }
}

/// Fig. 13b: simulated response of all cores to a ΔI step on one core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepResponse {
    /// Core that received the step.
    pub source_core: usize,
    /// Per-core voltage traces.
    pub traces: Vec<ScopeTrace>,
    /// Per-core peak droop depth (volts below the pre-step level).
    pub droop_depth: [f64; NUM_CORES],
    /// Per-core time (seconds after the step) of 25 % of the final droop —
    /// the arrival time of the disturbance.
    pub arrival_s: [f64; NUM_CORES],
}

impl StepResponse {
    /// Renders the Fig. 13b summary rows.
    pub fn render(&self) -> String {
        let mut out = format!(
            "# Fig. 13b: simulated dI step on core {} — propagation to all cores\n\
             core,droop_depth_mv,arrival_ns\n",
            self.source_core
        );
        for i in 0..NUM_CORES {
            out.push_str(&format!(
                "core{i},{:.2},{:.1}\n",
                self.droop_depth[i] * 1e3,
                self.arrival_s[i] * 1e9
            ));
        }
        out
    }
}

struct StepDrive {
    core: usize,
    t0: f64,
    amps: f64,
    idle: f64,
}

impl Drive for StepDrive {
    fn currents(&self, t: f64, out: &mut [f64]) {
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.idle
                + if i == self.core && t >= self.t0 {
                    self.amps
                } else {
                    0.0
                };
        }
    }
    fn edges(&self, t0: f64, t1: f64, out: &mut Vec<f64>) {
        if self.t0 >= t0 && self.t0 < t1 {
            out.push(self.t0);
        }
    }
}

/// Simulates a ΔI step on `source_core` while the others idle (the
/// paper's Cadence/Sigrity experiment).
///
/// # Errors
///
/// Returns [`PdnError`] if the PDN solve fails.
pub fn run_step_response(
    chip: &Chip,
    source_core: usize,
    step_amps: f64,
) -> Result<StepResponse, PdnError> {
    let mut solver = TransientSolver::new(chip.pdn().netlist())?;
    let t0 = 0.5e-6;
    let drive = StepDrive {
        core: source_core,
        t0,
        amps: step_amps,
        idle: chip.config().core.static_power_w / chip.config().core.v_nom,
    };
    let probes: Vec<Probe> = (0..NUM_CORES)
        .map(|i| Probe::NodeVoltage(chip.pdn().core_node(i)))
        .collect();
    let mut tc = TransientConfig::new(4e-6);
    tc.h_coarse = 2e-9;
    tc.h_fine = 0.5e-9;
    tc.settle = 0.0;
    tc.record_decimation = Some(1);
    let res = solver.run(&drive, &probes, &tc)?;

    let mut traces = Vec::with_capacity(NUM_CORES);
    let mut droop_depth = [0.0; NUM_CORES];
    let mut arrival_s = [0.0; NUM_CORES];
    for i in 0..NUM_CORES {
        let trace = ScopeTrace::new(res.times.clone(), res.traces[i].clone())
            .expect("monotonic solver times");
        // Pre-step level: last sample before the step.
        let pre_idx = res.times.partition_point(|&t| t < t0).saturating_sub(1);
        let v_pre = res.traces[i][pre_idx];
        let mut depth = 0.0f64;
        for (t, v) in res.times.iter().zip(&res.traces[i]) {
            if *t >= t0 {
                depth = depth.max(v_pre - v);
            }
        }
        let threshold = v_pre - 0.25 * depth;
        let arrival = res
            .times
            .iter()
            .zip(&res.traces[i])
            .find(|(t, v)| **t >= t0 && **v <= threshold)
            .map(|(t, _)| t - t0)
            .unwrap_or(f64::INFINITY);
        droop_depth[i] = depth;
        arrival_s[i] = arrival;
        traces.push(trace);
    }
    Ok(StepResponse {
        source_core,
        traces,
        droop_depth,
        arrival_s,
    })
}

/// Fig. 14: two specific mappings of three maximum stressmarks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingComparison {
    /// Cores used by the split (best-case) mapping and its per-core noise.
    pub split_mapping: (Vec<usize>, [f64; NUM_CORES]),
    /// Cores used by the clustered (worst-case) mapping and its per-core
    /// noise.
    pub clustered_mapping: (Vec<usize>, [f64; NUM_CORES]),
}

impl MappingComparison {
    /// Worst core noise of the split mapping.
    pub fn split_worst(&self) -> f64 {
        self.split_mapping
            .1
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Worst core noise of the clustered mapping.
    pub fn clustered_worst(&self) -> f64 {
        self.clustered_mapping
            .1
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Renders the Fig. 14 panels.
    pub fn render(&self) -> String {
        let panel = |label: &str, cores: &[usize], pct: &[f64; NUM_CORES]| {
            let mut s = format!("{label}: stressmarks on cores {cores:?}\n");
            for (i, v) in pct.iter().enumerate() {
                let mark = if cores.contains(&i) { "didt" } else { "idle" };
                s.push_str(&format!("  core{i} [{mark}]: {v:.1} %p2p\n"));
            }
            s
        };
        format!(
            "# Fig. 14: two mappings of 3 worst-case dI/dt stressmarks\n{}worst: {:.1} %p2p\n{}worst: {:.1} %p2p\n",
            panel("split across rows", &self.split_mapping.0, &self.split_mapping.1),
            self.split_worst(),
            panel("same row cluster", &self.clustered_mapping.0, &self.clustered_mapping.1),
            self.clustered_worst()
        )
    }
}

fn mapping_from_cores(cores: &[usize]) -> Mapping {
    Mapping::from_fn(NUM_CORES, |i| {
        if cores.contains(&i) {
            WorkloadKind::MaxDidt
        } else {
            WorkloadKind::Idle
        }
    })
}

/// The Fig. 13b step-propagation experiment. The raw transient solve
/// bypasses the noise kernel, so the job list stays empty and `assemble`
/// computes directly; `step_amps = None` sizes the step from the
/// testbed's maximum stressmark.
#[derive(Debug, Clone)]
pub struct StepResponseExperiment {
    /// Core receiving the ΔI step.
    pub source_core: usize,
    /// Step amplitude in amps (`None` = the max stressmark's ΔI).
    pub step_amps: Option<f64>,
}

impl Experiment for StepResponseExperiment {
    type Artifact = StepResponse;

    fn id(&self) -> &'static str {
        "fig13b"
    }

    fn title(&self) -> &'static str {
        "Fig. 13b: simulated dI step propagation to all cores"
    }

    fn assemble(
        &self,
        tb: &Testbed,
        _outcomes: &[Arc<NoiseOutcome>],
    ) -> Result<StepResponse, PdnError> {
        let amps = self
            .step_amps
            .unwrap_or_else(|| tb.max_stressmark(2.5e6, None).delta_i());
        run_step_response(tb.chip(), self.source_core, amps)
    }

    fn render(&self, artifact: &StepResponse) -> String {
        artifact.render()
    }
}

/// The Fig. 14 two-mapping comparison experiment: stressmarks on
/// {1, 4, 5} (split across rows) vs {0, 2, 4} (one row/domain cluster).
#[derive(Debug, Clone)]
pub struct MappingComparisonExperiment {
    /// Stimulus frequency of the stressmarks.
    pub stim_freq_hz: f64,
}

impl MappingComparisonExperiment {
    const SPLIT: [usize; 3] = [1, 4, 5];
    const CLUSTERED: [usize; 3] = [0, 2, 4];

    fn run_cfg() -> NoiseRunConfig {
        NoiseRunConfig {
            window_s: Some(60e-6),
            record_traces: false,
            seed: 1,
            ..NoiseRunConfig::default()
        }
    }
}

impl Experiment for MappingComparisonExperiment {
    type Artifact = MappingComparison;

    fn id(&self) -> &'static str {
        "fig14"
    }

    fn title(&self) -> &'static str {
        "Fig. 14: split vs clustered mapping of 3 stressmarks"
    }

    fn jobs(&self, tb: &Testbed) -> Result<Vec<SimJob>, PdnError> {
        let sync = Some(SyncSpec::paper_default());
        let batch = SimJob::batch(tb.chip());
        Ok([Self::SPLIT, Self::CLUSTERED]
            .iter()
            .map(|cores| {
                batch.job(
                    tb.loads_of_mapping(&mapping_from_cores(cores), self.stim_freq_hz, sync),
                    Self::run_cfg(),
                )
            })
            .collect())
    }

    fn assemble(
        &self,
        _tb: &Testbed,
        outcomes: &[Arc<NoiseOutcome>],
    ) -> Result<MappingComparison, PdnError> {
        Ok(MappingComparison {
            split_mapping: (Self::SPLIT.to_vec(), outcomes[0].pct_p2p.to_array()),
            clustered_mapping: (Self::CLUSTERED.to_vec(), outcomes[1].pct_p2p.to_array()),
        })
    }

    fn render(&self, artifact: &MappingComparison) -> String {
        artifact.render()
    }
}

/// The drawer-scale chip-to-chip propagation artifact: a ΔI step on one
/// chip of a multi-chip drawer, observed at every chip's package node.
///
/// The drawer analogue of Fig. 13b: where the paper studies how noise
/// crosses core boundaries inside one chip, this study scales the same
/// question to chips sharing a board PDN (the zEC12 drawer/book level
/// the paper measures in §III). Not part of the golden report — it runs
/// on demand (`drawer-prop`) and inside the benchmark harness, where its
/// 200+-unknown system exercises the sparse solver path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrawerPropagation {
    /// The configuration the study ran.
    pub config: DrawerStepConfig,
    /// The solved outcome.
    pub outcome: DrawerStepOutcome,
}

impl DrawerPropagation {
    /// Renders the chip-to-chip summary rows.
    pub fn render(&self) -> String {
        let mut out = format!(
            "# Drawer propagation: dI step on chip {} core {} — {} chips, {} MNA unknowns\n\
             chip,droop_depth_mv,arrival_ns\n",
            self.config.source_chip,
            self.config.source_core,
            self.config.drawer.chips,
            self.outcome.system_size
        );
        for (c, (d, a)) in self
            .outcome
            .droop_depth_v
            .iter()
            .zip(&self.outcome.arrival_s)
            .enumerate()
        {
            out.push_str(&format!("chip{c},{:.3},{:.1}\n", d * 1e3, a * 1e9));
        }
        out.push_str(&format!(
            "# stepped core droop: {:.3} mV; transient steps: {}\n",
            self.outcome.source_core_droop_v * 1e3,
            self.outcome.steps
        ));
        if self.outcome.rom_states > 0 {
            out.push_str(&format!(
                "# reduced-order model: {} states, calibrated max error {:.3} mV\n",
                self.outcome.rom_states,
                self.outcome.rom_max_error_v * 1e3
            ));
        }
        out
    }
}

/// The drawer chip-to-chip propagation experiment. Its solve routes
/// through [`Engine::run_drawer`] (the engine's drawer memo), so repeat
/// runs on a shared engine assemble from cache.
#[derive(Debug, Clone)]
pub struct DrawerPropagationExperiment {
    /// The drawer step configuration to run.
    pub cfg: DrawerStepConfig,
}

impl Experiment for DrawerPropagationExperiment {
    type Artifact = DrawerPropagation;

    fn id(&self) -> &'static str {
        "drawer-prop"
    }

    fn title(&self) -> &'static str {
        "Drawer study: dI step propagation across chips on a shared board PDN"
    }

    /// Direct-solve fallback used only when the experiment is driven
    /// through the default job pipeline (no engine in scope); the
    /// overridden [`Experiment::run`] is the memoized path.
    fn assemble(
        &self,
        _tb: &Testbed,
        _outcomes: &[Arc<NoiseOutcome>],
    ) -> Result<DrawerPropagation, PdnError> {
        let outcome = DrawerJob::new(self.cfg.clone())?.solve()?;
        Ok(DrawerPropagation {
            config: self.cfg.clone(),
            outcome,
        })
    }

    fn render(&self, artifact: &DrawerPropagation) -> String {
        artifact.render()
    }

    fn run(&self, _tb: &Testbed, engine: &Engine) -> Result<DrawerPropagation, PdnError> {
        let job = DrawerJob::new(self.cfg.clone())?;
        let outcome = engine.run_drawer(&job)?;
        Ok(DrawerPropagation {
            config: self.cfg.clone(),
            outcome: (*outcome).clone(),
        })
    }

    fn run_settled(
        &self,
        tb: &Testbed,
        engine: &Engine,
    ) -> Result<DrawerPropagation, ExperimentFailure> {
        self.run(tb, engine).map_err(ExperimentFailure::from)
    }
}

/// Runs the drawer propagation study on the shared engine.
///
/// # Errors
///
/// Returns [`PdnError`] if the PDN solve fails.
pub fn run_drawer_propagation(cfg: &DrawerStepConfig) -> Result<DrawerPropagation, PdnError> {
    DrawerPropagationExperiment { cfg: cfg.clone() }.run(Testbed::fast(), Engine::shared())
}

/// Runs the Fig. 14 comparison on the shared engine.
///
/// # Errors
///
/// Returns [`PdnError`] if a PDN solve fails.
pub fn run_mapping_comparison(
    tb: &Testbed,
    stim_freq_hz: f64,
) -> Result<MappingComparison, PdnError> {
    MappingComparisonExperiment { stim_freq_hz }.run(tb, Engine::shared())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta_i::{run_delta_i, DeltaIConfig};

    #[test]
    fn correlation_detects_row_clusters() {
        let tb = Testbed::fast();
        let data = run_delta_i(tb, &DeltaIConfig::reduced()).unwrap();
        let analysis = CorrelationAnalysis::from_dataset(&data);
        assert_eq!(analysis.cluster_a, vec![0, 2, 4], "{}", analysis.render());
        assert_eq!(analysis.cluster_b, vec![1, 3, 5]);
        assert!(analysis.mean_within > analysis.mean_between);
        // Paper: all inter-core correlations > 0.91 (shared PDN). The
        // reduced test campaign has few samples, so only a looser floor
        // is asserted here; the paper-scale campaign is checked in the
        // fig13a bench harness.
        assert!(
            analysis.matrix.min_off_diagonal() > 0.6,
            "min off-diag {:.3}",
            analysis.matrix.min_off_diagonal()
        );
    }

    #[test]
    fn step_on_core0_hits_same_row_harder_and_faster() {
        let chip = Chip::paper_default();
        let resp = run_step_response(&chip, 0, 12.0).unwrap();
        // Source core droops deepest.
        assert!(resp.droop_depth[0] > resp.droop_depth[2]);
        // Same-row cores 2, 4 droop deeper than opposite-row 1, 3, 5.
        let same = (resp.droop_depth[2] + resp.droop_depth[4]) / 2.0;
        let cross = (resp.droop_depth[1] + resp.droop_depth[3] + resp.droop_depth[5]) / 3.0;
        assert!(same > cross, "same-row {same:.5} vs cross-row {cross:.5}");
        // And they see the disturbance no later.
        let t_same = resp.arrival_s[2].min(resp.arrival_s[4]);
        let t_cross = resp.arrival_s[1]
            .min(resp.arrival_s[3])
            .min(resp.arrival_s[5]);
        assert!(t_same <= t_cross + 1e-9, "same {t_same} vs cross {t_cross}");
    }

    #[test]
    fn drawer_experiment_is_registered_and_renders() {
        let entry = crate::experiment::find("drawer-prop").unwrap();
        assert!(!entry.in_report, "drawer study must stay out of the report");
        let cfg = DrawerStepConfig {
            window_s: 1e-6,
            ..DrawerStepConfig::default()
        };
        let exp = DrawerPropagationExperiment { cfg };
        let engine = Engine::with_workers(1);
        let art = exp.run(Testbed::fast(), &engine).unwrap();
        assert_eq!(art.outcome.droop_depth_v.len(), art.config.drawer.chips);
        assert!(art.outcome.system_size > 150);
        let rendered = exp.render(&art);
        assert!(rendered.contains("Drawer propagation"), "{rendered}");
        assert!(rendered.contains("chip5"), "{rendered}");
        // Re-running on the same engine answers from the drawer memo.
        let solves = engine.solves();
        exp.run(Testbed::fast(), &engine).unwrap();
        assert_eq!(engine.solves(), solves);
    }

    #[test]
    fn clustered_mapping_is_noisier_than_split() {
        let tb = Testbed::fast();
        let cmp = run_mapping_comparison(tb, 2.5e6).unwrap();
        assert!(
            cmp.clustered_worst() > cmp.split_worst(),
            "clustered {:.1} vs split {:.1}",
            cmp.clustered_worst(),
            cmp.split_worst()
        );
    }
}
