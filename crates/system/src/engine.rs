//! The unified experiment engine: content-keyed simulation jobs, a
//! scoped-thread parallel executor, and a sharded memo cache.
//!
//! Every experiment in the workspace ultimately reduces to calls of
//! [`crate::noise::run_noise`], which is a *pure* function of the chip,
//! the per-core loads and the run configuration. This module exploits
//! that purity twice:
//!
//! 1. **Parallelism** — independent jobs run on a work-stealing pool of
//!    scoped threads ([`std::thread::scope`], no extra dependencies).
//!    Because jobs are pure, parallel execution is bitwise identical to
//!    serial execution (an invariant the test suite enforces).
//! 2. **Memoization** — a [`SimJob`] carries a [`JobKey`] derived from
//!    the *content* of its inputs (chip configuration, the electrical
//!    fields of each load, window/seed/trace options). Identical jobs —
//!    within one experiment or across experiments sharing an engine —
//!    solve once and share the cached [`NoiseOutcome`].
//!
//! The engine is additionally the workspace's fault boundary (see
//! `DESIGN.md`, "Failure model"). [`Engine::run_jobs_settled`] captures
//! each job's failure — solver error or worker panic — as a
//! [`JobFault`] instead of aborting the batch, a [`RetryPolicy`] grants
//! transiently failing jobs extra attempts, and a [`FaultInjector`]
//! plants deterministic faults for testing the whole degraded path.
//! Failed solves are never cached, and all cache locks recover from
//! poisoning, so one faulted job cannot poison the results of another.
//!
//! The worker count defaults to [`std::thread::available_parallelism`]
//! and can be overridden with the `VOLTNOISE_THREADS` environment
//! variable (`VOLTNOISE_THREADS=1` forces serial execution).

use crate::chip::Chip;
use crate::fault::{panic_message, FaultInjector, FaultKind, InjectedFault, JobFault, RetryPolicy};
use crate::noise::{
    run_drawer_step_instrumented, run_noise, run_noise_instrumented, CoreLoad, DrawerStepConfig,
    DrawerStepOutcome, NoiseOutcome, NoiseRunConfig, SolveTelemetry,
};
use crate::rack::{run_rack_noise, run_rack_noise_instrumented, RackScenario};
use crate::site::SiteVec;
use crate::store::{Fnv128, ResultStore};
use crate::telemetry::{trace_enabled, EngineTelemetry};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;
use voltnoise_pdn::signal::trace_signature;
use voltnoise_pdn::topology::NUM_CORES;
use voltnoise_pdn::{CancelToken, PdnError, SolveSpec, SolverBackend};

/// Number of independently locked cache shards. A small power of two:
/// enough to keep worker threads from serializing on one mutex, small
/// enough that an idle engine stays cheap.
const CACHE_SHARDS: usize = 16;

/// Locks a mutex, recovering the inner data if a previous holder
/// panicked. Cache shards and result slots only ever hold data that is
/// valid between operations (a `HashMap` insert either happened or did
/// not), so a poisoned lock carries no torn state worth refusing.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Content key of one core's load: exactly the fields
/// [`crate::noise::run_noise`] consumes, with floats captured bit-exactly.
///
/// Instruction bodies, repetition counts and IPCs are deliberately
/// excluded — the noise engine only sees the compiled electrical
/// envelope (currents, stimulus frequency, duty, synchronization), so
/// two stressmarks with different code but the same envelope are the
/// same job.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LoadKey {
    /// Core idles at its static current.
    Idle,
    /// Core runs a compiled stressmark with this electrical envelope.
    Stress {
        /// `stim_freq_hz` bits.
        stim_freq: u64,
        /// `duty` bits.
        duty: u64,
        /// `i_high_a` bits.
        i_high: u64,
        /// `i_low_a` bits.
        i_low: u64,
        /// `i_idle_a` bits.
        i_idle: u64,
        /// Synchronization condition: `(interval_s bits, offset_ticks,
        /// events)` when TOD-synchronized.
        sync: Option<(u64, u32, u32)>,
    },
}

impl LoadKey {
    /// Derives the key of a load.
    pub fn of(load: &CoreLoad) -> LoadKey {
        match load {
            CoreLoad::Idle => LoadKey::Idle,
            CoreLoad::Stressmark(sm) => LoadKey::Stress {
                stim_freq: sm.spec.stim_freq_hz.to_bits(),
                duty: sm.spec.duty.to_bits(),
                i_high: sm.i_high_a.to_bits(),
                i_low: sm.i_low_a.to_bits(),
                i_idle: sm.i_idle_a.to_bits(),
                sync: sm
                    .spec
                    .sync
                    .as_ref()
                    .map(|s| (s.interval_s.to_bits(), s.offset_ticks, s.events)),
            },
        }
    }
}

/// Content key of a whole simulation job. Two jobs with equal keys
/// produce bitwise-identical [`NoiseOutcome`]s.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JobKey {
    /// Scenario fingerprint. For chip jobs: the serialized
    /// [`crate::chip::ChipConfig`] plus each core's realized skitter
    /// configuration (which [`Chip::undervolted`] re-anchors
    /// independently of the config). For rack jobs:
    /// [`RackScenario::signature`], which embeds the base chip's
    /// fingerprint plus the rack parameters and variation spec.
    chip_sig: Arc<str>,
    /// Per-site load keys (one per chip core, or one per rack site).
    loads: Vec<LoadKey>,
    /// `NoiseRunConfig::window_s` bits.
    window: Option<u64>,
    /// `NoiseRunConfig::record_traces`.
    record_traces: bool,
    /// `NoiseRunConfig::seed`.
    seed: u64,
    /// `NoiseRunConfig::max_steps` — part of the key because a budgeted
    /// job is a different experiment than an unbudgeted one (it may fail
    /// where the other succeeds). The cancellation token is deliberately
    /// *not* keyed: an un-cancelled token never changes results.
    max_steps: Option<usize>,
    /// `NoiseRunConfig::solve` captured bit-exactly (see [`SolveKey`]):
    /// a result computed under a different solve spec — another backend,
    /// or a reduced-order model with any error budget — is a different
    /// result, even when the outputs happen to agree.
    solve: SolveKey,
}

/// Bit-exact, hashable rendering of a [`SolveSpec`] for content keys:
/// the backend enum plus (when a ROM is requested) every [`voltnoise_pdn::RomSpec`]
/// field with floats captured as `to_bits`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SolveKey {
    backend: SolverBackend,
    /// `(budget_v bits, max_states, expansion_hz bits, calib_window_s
    /// bits, dilation)` when a reduced-order model is requested.
    rom: Option<(u64, u64, u64, u64, u32)>,
}

impl SolveKey {
    fn of(spec: &SolveSpec) -> SolveKey {
        SolveKey {
            backend: spec.backend,
            rom: spec.rom.map(|r| {
                (
                    r.budget_v.to_bits(),
                    r.max_states as u64,
                    r.expansion_hz.to_bits(),
                    r.calib_window_s.to_bits(),
                    r.dilation,
                )
            }),
        }
    }
}

impl JobKey {
    /// The job's random seed (useful when reporting faults: a reseeded
    /// retry carries a different seed than the job it stands in for).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A short, deterministic digest for fault reports: a content hash
    /// plus the run seed.
    pub fn digest(&self) -> String {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        format!("job {:016x} (seed {})", h.finish(), self.seed)
    }

    /// Stable 128-bit content digest used as the persistent-store key.
    ///
    /// Unlike [`JobKey::digest`] (which uses the std hasher and is only
    /// meaningful within one process), this digest is computed with a
    /// fixed FNV-1a over a canonical byte rendering of every key field —
    /// chip signature included — so it stays valid across processes,
    /// machines and toolchain upgrades. It is the on-disk key contract
    /// of [`ResultStore`]; changing the rendering requires bumping the
    /// store's key-scheme version.
    pub fn store_digest(&self) -> String {
        let mut h = Fnv128::new();
        h.update(self.chip_sig.as_bytes());
        h.update(&[0x1f]);
        // Load-count prefix: keys became variable-length when site
        // indexing replaced the fixed six-core arrays, and a length
        // prefix keeps the rendering injective (scheme rev /3).
        h.update(&(self.loads.len() as u64).to_le_bytes());
        for load in &self.loads {
            match load {
                LoadKey::Idle => h.update(&[0]),
                LoadKey::Stress {
                    stim_freq,
                    duty,
                    i_high,
                    i_low,
                    i_idle,
                    sync,
                } => {
                    h.update(&[1]);
                    for v in [stim_freq, duty, i_high, i_low, i_idle] {
                        h.update(&v.to_le_bytes());
                    }
                    match sync {
                        None => h.update(&[0]),
                        Some((interval, offset, events)) => {
                            h.update(&[1]);
                            h.update(&interval.to_le_bytes());
                            h.update(&offset.to_le_bytes());
                            h.update(&events.to_le_bytes());
                        }
                    }
                }
            }
        }
        match self.window {
            None => h.update(&[0]),
            Some(w) => {
                h.update(&[1]);
                h.update(&w.to_le_bytes());
            }
        }
        h.update(&[u8::from(self.record_traces)]);
        h.update(&self.seed.to_le_bytes());
        match self.max_steps {
            None => h.update(&[0]),
            Some(n) => {
                h.update(&[1]);
                h.update(&(n as u64).to_le_bytes());
            }
        }
        h.update(&[match self.solve.backend {
            SolverBackend::Auto => 0,
            SolverBackend::Dense => 1,
            SolverBackend::Sparse => 2,
        }]);
        match self.solve.rom {
            None => h.update(&[0]),
            Some((budget, states, expansion, calib, dilation)) => {
                h.update(&[1]);
                for v in [budget, states, expansion, calib] {
                    h.update(&v.to_le_bytes());
                }
                h.update(&dilation.to_le_bytes());
            }
        }
        h.finish_hex()
    }
}

/// Fallibly computes a chip's content fingerprint. The JSON rendering of
/// the configuration is canonical (struct fields serialize in declaration
/// order, map keys sorted), so equal configurations produce equal
/// signatures.
///
/// # Errors
///
/// Returns [`PdnError::InvalidTimebase`] when a configuration fails to
/// serialize. The vendored JSON writer is total for the plain-data
/// config structs, so this cannot happen today; the fallible signature
/// exists so the error path stays typed if a config ever grows a
/// non-serializable field.
pub fn try_chip_signature(chip: &Chip) -> Result<Arc<str>, PdnError> {
    let render = |what: &str, r: Result<String, serde_json::Error>| {
        r.map_err(|e| PdnError::InvalidTimebase {
            reason: format!("{what} configuration failed to serialize: {e}"),
        })
    };
    let cfg = render("chip", serde_json::to_string(chip.config()))?;
    let mut sig = String::with_capacity(cfg.len() + 64 * NUM_CORES);
    sig.push_str(&cfg);
    for i in 0..NUM_CORES {
        sig.push('|');
        sig.push_str(&render(
            "skitter",
            serde_json::to_string(chip.skitter(i).config()),
        )?);
    }
    Ok(Arc::from(sig))
}

/// Computes a chip's content fingerprint (infallible wrapper over
/// [`try_chip_signature`]). In the impossible case that serialization
/// fails, falls back to the `Debug` rendering of the chip configuration —
/// still deterministic and content-derived, so memoization stays sound.
pub fn chip_signature(chip: &Chip) -> Arc<str> {
    try_chip_signature(chip)
        .unwrap_or_else(|_| Arc::from(format!("debug-fallback|{:?}", chip.config())))
}

/// What a [`SimJob`] solves: a single chip (the 1 drawer × 1 chip ×
/// [`NUM_CORES`] special case) or a whole rack of variated chips. Both
/// flow through the same key scheme, cache, store and executor — a rack
/// job is just a job with more load slots and a different fingerprint.
#[derive(Debug, Clone)]
pub enum JobTarget {
    /// A single six-core chip, solved by [`run_noise`].
    Chip(Arc<Chip>),
    /// A rack scenario, solved by [`crate::rack::run_rack_noise`].
    Rack(Arc<RackScenario>),
}

impl JobTarget {
    /// Number of load slots the target expects.
    pub fn num_sites(&self) -> usize {
        match self {
            JobTarget::Chip(_) => NUM_CORES,
            JobTarget::Rack(rack) => rack.num_sites(),
        }
    }
}

/// A pure, hashable unit of simulation work: one noise solve of a chip
/// or rack under per-site loads.
#[derive(Debug, Clone)]
pub struct SimJob {
    target: JobTarget,
    loads: SiteVec<CoreLoad>,
    cfg: NoiseRunConfig,
    key: JobKey,
}

impl SimJob {
    /// Builds a chip job from an already-shared chip. Use
    /// [`SimJob::batch`] when creating many jobs on the same chip — the
    /// signature is computed once per chip, not once per job.
    pub fn new(
        chip: Arc<Chip>,
        loads: impl Into<SiteVec<CoreLoad>>,
        cfg: NoiseRunConfig,
    ) -> SimJob {
        let sig = chip_signature(&chip);
        SimJob::with_signature(chip, sig, loads, cfg)
    }

    /// Builds a chip job reusing a precomputed chip signature.
    pub fn with_signature(
        chip: Arc<Chip>,
        chip_sig: Arc<str>,
        loads: impl Into<SiteVec<CoreLoad>>,
        cfg: NoiseRunConfig,
    ) -> SimJob {
        SimJob::keyed(JobTarget::Chip(chip), chip_sig, loads.into(), cfg)
    }

    /// Builds a rack job. The key carries the rack's content signature,
    /// so rack jobs memoize, persist and dedupe through the engine and
    /// store exactly like chip jobs.
    pub fn rack(
        rack: Arc<RackScenario>,
        loads: impl Into<SiteVec<CoreLoad>>,
        cfg: NoiseRunConfig,
    ) -> SimJob {
        let sig = rack.signature();
        SimJob::keyed(JobTarget::Rack(rack), sig, loads.into(), cfg)
    }

    fn keyed(
        target: JobTarget,
        chip_sig: Arc<str>,
        loads: SiteVec<CoreLoad>,
        cfg: NoiseRunConfig,
    ) -> SimJob {
        let key = JobKey {
            chip_sig,
            loads: loads.iter().map(LoadKey::of).collect(),
            window: cfg.window_s.map(f64::to_bits),
            record_traces: cfg.record_traces,
            seed: cfg.seed,
            max_steps: cfg.max_steps,
            solve: SolveKey::of(&cfg.solve),
        };
        SimJob {
            target,
            loads,
            cfg,
            key,
        }
    }

    /// A factory for jobs sharing one chip (and one signature).
    pub fn batch(chip: &Chip) -> JobBatch {
        let chip = Arc::new(chip.clone());
        let sig = chip_signature(&chip);
        JobBatch {
            target: JobTarget::Chip(chip),
            sig,
        }
    }

    /// A factory for jobs sharing one rack scenario (and one signature).
    pub fn rack_batch(rack: Arc<RackScenario>) -> JobBatch {
        let sig = rack.signature();
        JobBatch {
            target: JobTarget::Rack(rack),
            sig,
        }
    }

    /// The job's content key.
    pub fn key(&self) -> &JobKey {
        &self.key
    }

    /// The scenario the job runs on.
    pub fn target(&self) -> &JobTarget {
        &self.target
    }

    /// The chip the job runs on, when it is a chip job.
    pub fn chip(&self) -> Option<&Chip> {
        match &self.target {
            JobTarget::Chip(chip) => Some(chip),
            JobTarget::Rack(_) => None,
        }
    }

    /// The per-site loads (site-ordinal order).
    pub fn loads(&self) -> &[CoreLoad] {
        &self.loads
    }

    /// The run configuration.
    pub fn config(&self) -> &NoiseRunConfig {
        &self.cfg
    }

    /// The same job with a different seed (used by reseeding retries).
    fn reseeded(&self, seed: u64) -> SimJob {
        let cfg = NoiseRunConfig {
            seed,
            ..self.cfg.clone()
        };
        SimJob::keyed(
            self.target.clone(),
            self.key.chip_sig.clone(),
            self.loads.clone(),
            cfg,
        )
    }

    /// Solves the job directly, bypassing any cache.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] when the PDN solve fails.
    pub fn solve(&self) -> Result<NoiseOutcome, PdnError> {
        match &self.target {
            JobTarget::Chip(chip) => run_noise(chip, &self.loads, &self.cfg),
            JobTarget::Rack(rack) => run_rack_noise(rack, &self.loads, &self.cfg),
        }
    }
}

/// A content-keyed drawer-scale simulation job: one
/// [`run_drawer_step_instrumented`] call.
///
/// Unlike [`SimJob`] (keyed on structured [`JobKey`] fields), a drawer
/// job's key is the [`Fnv128`] digest of the canonical JSON rendering of
/// its [`DrawerStepConfig`] — the config is plain serializable data, so
/// the rendering *is* the content. Drawer outcomes are memoized in
/// memory only; they do not enter the persistent [`ResultStore`], whose
/// record format is [`NoiseOutcome`]-typed.
#[derive(Debug, Clone)]
pub struct DrawerJob {
    cfg: DrawerStepConfig,
    digest: String,
}

impl DrawerJob {
    /// Builds a job, computing its content digest.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidTimebase`] when the configuration fails
    /// to serialize (cannot happen for this plain-data struct; the error
    /// path stays typed rather than panicking).
    pub fn new(cfg: DrawerStepConfig) -> Result<DrawerJob, PdnError> {
        let json = serde_json::to_string(&cfg).map_err(|e| PdnError::InvalidTimebase {
            reason: format!("drawer config failed to serialize: {e}"),
        })?;
        let mut h = Fnv128::new();
        h.update(b"drawer-step/2|");
        h.update(json.as_bytes());
        Ok(DrawerJob {
            cfg,
            digest: h.finish_hex(),
        })
    }

    /// The job's configuration.
    pub fn config(&self) -> &DrawerStepConfig {
        &self.cfg
    }

    /// The job's stable content digest (the memo key).
    pub fn digest(&self) -> &str {
        &self.digest
    }

    /// Solves the job directly, bypassing any cache.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] when the PDN solve fails.
    pub fn solve(&self) -> Result<DrawerStepOutcome, PdnError> {
        run_drawer_step_instrumented(&self.cfg).map(|(outcome, _)| outcome)
    }
}

/// Factory producing [`SimJob`]s that share one scenario instance
/// (chip or rack) and one precomputed signature.
#[derive(Debug, Clone)]
pub struct JobBatch {
    target: JobTarget,
    sig: Arc<str>,
}

impl JobBatch {
    /// Builds one job of the batch.
    pub fn job(&self, loads: impl Into<SiteVec<CoreLoad>>, cfg: NoiseRunConfig) -> SimJob {
        SimJob::keyed(self.target.clone(), self.sig.clone(), loads.into(), cfg)
    }
}

/// Run statistics of an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Worker threads the engine schedules onto.
    pub workers: usize,
    /// Jobs actually solved (cache misses).
    pub solves: usize,
    /// Jobs answered from the memo cache.
    pub cache_hits: usize,
    /// Jobs that exhausted every attempt and were captured as faults.
    pub faults: usize,
    /// Extra attempts granted by the retry policy (a job that succeeds
    /// on its second attempt contributes 1 here and 0 to `faults`).
    pub retries: usize,
    /// Jobs answered from the persistent result store (a store hit also
    /// promotes the outcome into the in-memory cache, so later lookups
    /// count as `cache_hits`).
    pub store_hits: usize,
    /// Corrupt lines skipped when the persistent store was opened
    /// (zero without a store).
    pub store_corrupt_lines: usize,
    /// Faults whose terminal kind was budget exhaustion
    /// ([`crate::fault::FaultKind::Budget`]); a subset of `faults`.
    pub budget_faults: usize,
    /// Faults whose terminal kind was a wall-clock deadline
    /// ([`crate::fault::FaultKind::Deadline`]); a subset of `faults`.
    pub deadline_faults: usize,
    /// Jobs currently being solved (gauge): distinct keys between
    /// singleflight registration and settlement. A serving layer's
    /// "how busy is the engine right now" signal.
    pub in_flight: usize,
    /// Depth of the serving layer's bounded work queue (gauge),
    /// published via [`Engine::set_queue_depth`]; zero for engines not
    /// behind a server.
    pub queue_depth: usize,
    /// Requests the serving layer shed — admission rejections plus
    /// queue-full discards — published via [`Engine::note_shed`]; zero
    /// for engines not behind a server.
    pub shed_total: usize,
    /// Callers that attached to an identical already-in-flight solve
    /// instead of starting their own (cross-client singleflight dedup).
    pub inflight_joins: usize,
    /// Jobs answered from a *read-through* store — a sibling shard's
    /// file attached via [`Engine::with_read_store`]. Counted apart
    /// from `store_hits` so a fleet can see failover traffic (work a
    /// crashed or stalled primary already paid for) separately from
    /// this engine's own resume hits.
    pub read_store_hits: usize,
    /// Estimated steps currently held by the serving layer's admission
    /// gate (gauge), published via [`Engine::set_admitted_steps`]; zero
    /// for engines not behind a server. A respawned worker must report
    /// zero here — admission permits die with the process.
    pub admitted_steps: u64,
    /// This engine's shard index in a fleet (gauge), published via
    /// [`Engine::set_shard_id`]; zero for standalone engines.
    pub shard_id: usize,
    /// Restart generation of the serving process (gauge), published via
    /// [`Engine::set_restart_gen`]: zero on first spawn, incremented by
    /// a supervisor on each respawn — the fleet's restart accounting
    /// survives the crashed process's counters.
    pub restart_gen: usize,
    /// Aggregated solver telemetry: deterministic work counters plus
    /// (when tracing was enabled) wall-clock histograms.
    pub telemetry: EngineTelemetry,
}

impl EngineStats {
    /// Renders the stats as pretty-printed JSON, the format consumed by
    /// the benchmark harness and written to `VOLTNOISE_STATS_PATH`.
    ///
    /// # Errors
    ///
    /// Returns a serialization error; cannot happen for this plain-data
    /// struct, but the path stays typed rather than panicking.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses stats back from the JSON rendering of
    /// [`EngineStats::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a parse error for malformed or mismatched JSON.
    pub fn from_json(json: &str) -> Result<EngineStats, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// One in-flight solve that concurrent identical requests attach to:
/// the first caller (the leader) solves, every later caller with the
/// same content key blocks on the condvar and shares the settled
/// result — success or fault — instead of duplicating the solve.
#[derive(Default)]
struct InflightSlot {
    result: Mutex<Option<Result<Arc<NoiseOutcome>, JobFault>>>,
    settled: Condvar,
}

/// The parallel, memoizing job executor.
pub struct Engine {
    workers: usize,
    retry: RetryPolicy,
    injector: Option<FaultInjector>,
    store: Option<ResultStore>,
    read_stores: Vec<ResultStore>,
    cancel: Option<CancelToken>,
    step_budget: Option<usize>,
    shards: Vec<Mutex<HashMap<JobKey, Arc<NoiseOutcome>>>>,
    drawer_memo: Mutex<HashMap<String, Arc<DrawerStepOutcome>>>,
    inflight: Mutex<HashMap<JobKey, Arc<InflightSlot>>>,
    solves: AtomicUsize,
    hits: AtomicUsize,
    attempts: AtomicUsize,
    faults: AtomicUsize,
    retries: AtomicUsize,
    store_hits: AtomicUsize,
    budget_faults: AtomicUsize,
    deadline_faults: AtomicUsize,
    in_flight: AtomicUsize,
    queue_depth: AtomicUsize,
    shed_total: AtomicUsize,
    inflight_joins: AtomicUsize,
    read_store_hits: AtomicUsize,
    admitted_steps: AtomicU64,
    shard_id: AtomicUsize,
    restart_gen: AtomicUsize,
    telemetry: Mutex<EngineTelemetry>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers)
            .field("solves", &self.solves.load(Ordering::Relaxed))
            .field("cache_hits", &self.hits.load(Ordering::Relaxed))
            .field("faults", &self.faults.load(Ordering::Relaxed))
            .field("retries", &self.retries.load(Ordering::Relaxed))
            .field("store", &self.store)
            .field("store_hits", &self.store_hits.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

/// Parses a `VOLTNOISE_THREADS` value into a worker count.
fn parsed_workers(raw: &str) -> Result<usize, &'static str> {
    let n: usize = raw.trim().parse().map_err(|_| "not a positive integer")?;
    if n == 0 {
        return Err("thread count must be at least 1");
    }
    Ok(n)
}

/// Resolves the worker count: `VOLTNOISE_THREADS` when set and valid,
/// otherwise the machine's available parallelism. An invalid setting is
/// reported on stderr rather than silently ignored.
fn default_workers() -> usize {
    if let Ok(s) = std::env::var("VOLTNOISE_THREADS") {
        match parsed_workers(&s) {
            Ok(n) => return n,
            Err(why) => eprintln!(
                "voltnoise: ignoring VOLTNOISE_THREADS={s:?} ({why}); \
                 falling back to available parallelism"
            ),
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

impl Engine {
    /// An engine with the default worker count (see module docs). When
    /// `VOLTNOISE_STORE` names a path, the engine additionally opens a
    /// persistent [`ResultStore`] there; an unopenable store is reported
    /// on stderr and skipped rather than aborting (durability degrades,
    /// the campaign does not).
    pub fn new() -> Engine {
        let mut engine = Engine::with_workers(default_workers());
        if let Ok(raw) = std::env::var("VOLTNOISE_STORE") {
            match ResultStore::open(&raw) {
                Ok(store) => engine.store = Some(store),
                Err(why) => eprintln!(
                    "voltnoise: ignoring VOLTNOISE_STORE={raw:?} ({why}); \
                     running without a persistent store"
                ),
            }
        }
        // `VOLTNOISE_READ_STORES` names colon-separated sibling shard
        // files to read through (never append to) — the fleet worker's
        // view of the shared store. An unopenable entry degrades that
        // one read path, not the engine.
        if let Ok(raw) = std::env::var("VOLTNOISE_READ_STORES") {
            for path in raw.split(':').filter(|p| !p.is_empty()) {
                match ResultStore::open(path) {
                    Ok(store) => engine.read_stores.push(store),
                    Err(why) => eprintln!(
                        "voltnoise: ignoring read store {path:?} ({why}); \
                         continuing without it"
                    ),
                }
            }
        }
        engine
    }

    /// An engine with an explicit worker count (≥ 1; 1 = serial).
    pub fn with_workers(workers: usize) -> Engine {
        Engine {
            workers: workers.max(1),
            retry: RetryPolicy::default(),
            injector: None,
            store: None,
            read_stores: Vec::new(),
            cancel: None,
            step_budget: None,
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            drawer_memo: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            solves: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            attempts: AtomicUsize::new(0),
            faults: AtomicUsize::new(0),
            retries: AtomicUsize::new(0),
            store_hits: AtomicUsize::new(0),
            budget_faults: AtomicUsize::new(0),
            deadline_faults: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            queue_depth: AtomicUsize::new(0),
            shed_total: AtomicUsize::new(0),
            inflight_joins: AtomicUsize::new(0),
            read_store_hits: AtomicUsize::new(0),
            admitted_steps: AtomicU64::new(0),
            shard_id: AtomicUsize::new(0),
            restart_gen: AtomicUsize::new(0),
            telemetry: Mutex::new(EngineTelemetry::default()),
        }
    }

    /// Sets the engine's retry policy (builder style).
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Engine {
        self.retry = retry;
        self
    }

    /// Installs a fault injector (builder style). Test harness only —
    /// injected faults exercise the capture/retry/degraded-report paths.
    #[must_use]
    pub fn with_injector(mut self, injector: FaultInjector) -> Engine {
        self.injector = Some(injector);
        self
    }

    /// Attaches a persistent result store at `path` (builder style):
    /// previously solved jobs are answered from disk, and every new
    /// solve is appended. See [`ResultStore`] for the format and its
    /// crash-tolerance guarantees.
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the store file cannot be opened or
    /// created.
    pub fn with_store<P: AsRef<Path>>(mut self, path: P) -> std::io::Result<Engine> {
        self.store = Some(ResultStore::open(path)?);
        Ok(self)
    }

    /// Attaches a *read-through* store (builder style): consulted after
    /// the primary store misses, refreshed incrementally from disk on
    /// each miss ([`ResultStore::get_fresh`]), and never appended to.
    /// This is how a fleet worker shares siblings' shard files — a
    /// failover batch is answered from the crashed primary's flushed
    /// records instead of being re-solved. May be called repeatedly to
    /// attach several shards.
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the store file cannot be opened or
    /// created.
    pub fn with_read_store<P: AsRef<Path>>(mut self, path: P) -> std::io::Result<Engine> {
        self.read_stores.push(ResultStore::open(path)?);
        Ok(self)
    }

    /// Installs a cooperative cancellation token (builder style). Once
    /// the token is cancelled, jobs not yet started settle as
    /// [`FaultKind::Cancelled`] faults and in-flight solves abort at
    /// their next accepted step; already-cached (and store-backed)
    /// results are still served, so a cancelled batch drains into a
    /// deterministic partial result set.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Engine {
        self.cancel = Some(token);
        self
    }

    /// Sets a default per-job step budget (builder style): jobs whose
    /// own [`NoiseRunConfig::max_steps`] is `None` inherit this bound.
    /// The engine-level budget is an execution property, not part of the
    /// job content key — within one engine it applies uniformly, and a
    /// cached or stored result (already paid for) is never re-budgeted.
    #[must_use]
    pub fn with_step_budget(mut self, max_steps: usize) -> Engine {
        self.step_budget = Some(max_steps);
        self
    }

    /// A process-wide shared engine: experiments routed through it share
    /// one memo cache, so e.g. the Fig. 11a campaign feeds the Fig. 13a
    /// correlation analysis without re-solving a single job.
    pub fn shared() -> &'static Engine {
        static CELL: OnceLock<Engine> = OnceLock::new();
        CELL.get_or_init(Engine::new)
    }

    /// The engine's worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The engine's retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Jobs solved so far (cache misses).
    pub fn solves(&self) -> usize {
        self.solves.load(Ordering::Relaxed)
    }

    /// Jobs answered from the cache so far.
    pub fn cache_hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Solve attempts started so far — the fault injector's ordinal
    /// counter. Counts every attempt (including failed and retried
    /// ones); cache hits consume no ordinal.
    pub fn solve_attempts(&self) -> usize {
        self.attempts.load(Ordering::Relaxed)
    }

    /// Jobs that exhausted every attempt and were captured as faults.
    pub fn faults(&self) -> usize {
        self.faults.load(Ordering::Relaxed)
    }

    /// Extra attempts granted by the retry policy so far.
    pub fn retries(&self) -> usize {
        self.retries.load(Ordering::Relaxed)
    }

    /// The attached persistent result store, if any.
    pub fn store(&self) -> Option<&ResultStore> {
        self.store.as_ref()
    }

    /// Jobs answered from the persistent store so far.
    pub fn store_hits(&self) -> usize {
        self.store_hits.load(Ordering::Relaxed)
    }

    /// Jobs answered from a read-through store so far.
    pub fn read_store_hits(&self) -> usize {
        self.read_store_hits.load(Ordering::Relaxed)
    }

    /// Publishes the serving layer's admission gauge (estimated steps
    /// currently holding permits) into the engine's stats, so `/stats`
    /// serves one coherent snapshot. Like [`Engine::set_queue_depth`],
    /// the engine itself never writes this.
    pub fn set_admitted_steps(&self, steps: u64) {
        self.admitted_steps.store(steps, Ordering::Relaxed);
    }

    /// Publishes this engine's shard index within a fleet.
    pub fn set_shard_id(&self, shard: usize) {
        self.shard_id.store(shard, Ordering::Relaxed);
    }

    /// Publishes the serving process's restart generation (0 = first
    /// spawn; a supervisor increments it on each respawn).
    pub fn set_restart_gen(&self, generation: usize) {
        self.restart_gen.store(generation, Ordering::Relaxed);
    }

    /// Faults whose terminal kind was budget exhaustion.
    pub fn budget_faults(&self) -> usize {
        self.budget_faults.load(Ordering::Relaxed)
    }

    /// Faults whose terminal kind was a wall-clock deadline.
    pub fn deadline_faults(&self) -> usize {
        self.deadline_faults.load(Ordering::Relaxed)
    }

    /// Distinct jobs currently being solved (gauge).
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Callers that attached to an identical in-flight solve so far.
    pub fn inflight_joins(&self) -> usize {
        self.inflight_joins.load(Ordering::Relaxed)
    }

    /// Publishes the serving layer's current work-queue depth into the
    /// engine's stats. The engine has no queue of its own — this gauge
    /// exists so `/stats` can serve one coherent [`EngineStats`]
    /// snapshot covering both the executor and the layer feeding it.
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// Records one shed request (admission rejection or queue-full
    /// discard) from the serving layer.
    pub fn note_shed(&self) {
        self.shed_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests shed by the serving layer so far.
    pub fn shed_total(&self) -> usize {
        self.shed_total.load(Ordering::Relaxed)
    }

    /// A snapshot of the engine's aggregated solver telemetry. Solver
    /// work counters are always populated; the wall-clock histograms
    /// only fill while tracing is enabled (`VOLTNOISE_TRACE`).
    pub fn telemetry(&self) -> EngineTelemetry {
        *lock_recover(&self.telemetry)
    }

    /// A snapshot of the engine's counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            workers: self.workers,
            solves: self.solves(),
            cache_hits: self.cache_hits(),
            faults: self.faults(),
            retries: self.retries(),
            store_hits: self.store_hits(),
            store_corrupt_lines: self.store.as_ref().map_or(0, ResultStore::corrupt_lines),
            budget_faults: self.budget_faults(),
            deadline_faults: self.deadline_faults(),
            in_flight: self.in_flight(),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            shed_total: self.shed_total(),
            inflight_joins: self.inflight_joins(),
            read_store_hits: self.read_store_hits(),
            admitted_steps: self.admitted_steps.load(Ordering::Relaxed),
            shard_id: self.shard_id.load(Ordering::Relaxed),
            restart_gen: self.restart_gen.load(Ordering::Relaxed),
            telemetry: self.telemetry(),
        }
    }

    /// The reason-matched error a job must fail fast with before its
    /// solver is entered, via either the engine-level token or the job's
    /// own config token. `None` while both tokens are live.
    fn pre_solve_abort(&self, job: &SimJob) -> Option<PdnError> {
        let check = |token: Option<&CancelToken>| token.and_then(|t| t.abort_error(0.0));
        check(self.cancel.as_ref()).or_else(|| check(job.cfg.cancel.as_ref()))
    }

    /// Solves a job with the engine-level step budget and cancellation
    /// token injected wherever the job's own config leaves them unset.
    /// The common case (no engine-level overrides) avoids the config
    /// clone entirely. Returns the outcome together with the solve's
    /// telemetry (which the caller aggregates; it never enters the
    /// outcome, the cache or the store).
    fn solve_job(&self, job: &SimJob) -> Result<(NoiseOutcome, SolveTelemetry), PdnError> {
        let inject_budget = job.cfg.max_steps.is_none() && self.step_budget.is_some();
        let inject_cancel = job.cfg.cancel.is_none() && self.cancel.is_some();
        let run = |cfg: &NoiseRunConfig| match &job.target {
            JobTarget::Chip(chip) => run_noise_instrumented(chip, &job.loads, cfg),
            JobTarget::Rack(rack) => run_rack_noise_instrumented(rack, &job.loads, cfg),
        };
        if !inject_budget && !inject_cancel {
            return run(&job.cfg);
        }
        let mut cfg = job.cfg.clone();
        if inject_budget {
            cfg.max_steps = self.step_budget;
        }
        if inject_cancel {
            cfg.cancel = self.cancel.clone();
        }
        run(&cfg)
    }

    /// Runs one drawer-scale job through the engine's drawer memo,
    /// solving on a miss. Solves count into [`Engine::solves`], memo
    /// answers into [`Engine::cache_hits`], and solver telemetry —
    /// including the sparse-backend counters the drawer exercises —
    /// aggregates into [`Engine::telemetry`] exactly like chip jobs.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] when the PDN solve fails. Failures are never
    /// memoized; a failing job re-solves when resubmitted.
    pub fn run_drawer(&self, job: &DrawerJob) -> Result<Arc<DrawerStepOutcome>, PdnError> {
        if let Some(hit) = lock_recover(&self.drawer_memo).get(job.digest()) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit.clone());
        }
        let wall_t0 = trace_enabled().then(Instant::now);
        let (outcome, solve_tel) = run_drawer_step_instrumented(job.config())?;
        let outcome = Arc::new(outcome);
        self.solves.fetch_add(1, Ordering::Relaxed);
        let wall_ns = wall_t0.map(|t0| t0.elapsed().as_nanos() as u64);
        lock_recover(&self.telemetry).record_job(&solve_tel.counters, &solve_tel.phase, wall_ns);
        lock_recover(&self.drawer_memo)
            .entry(job.digest().to_string())
            .or_insert_with(|| outcome.clone());
        Ok(outcome)
    }

    fn shard(&self, key: &JobKey) -> &Mutex<HashMap<JobKey, Arc<NoiseOutcome>>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % CACHE_SHARDS]
    }

    /// One solve attempt: consult the injector, solve, validate the
    /// outcome, and cache it. Only finite, successful outcomes are ever
    /// inserted into the cache, so a fault can never poison a later
    /// lookup.
    fn solve_attempt(&self, job: &SimJob) -> Result<Arc<NoiseOutcome>, PdnError> {
        let ordinal = self.attempts.fetch_add(1, Ordering::Relaxed);
        let injected = self.injector.as_ref().and_then(|inj| inj.decide(ordinal));
        match injected {
            Some(InjectedFault::SolverError) => return Err(PdnError::Injected { ordinal }),
            Some(InjectedFault::WorkerPanic) => {
                panic!("injected worker panic at solve {ordinal}")
            }
            Some(InjectedFault::NanOutcome) | None => {}
        }
        // Wall-clock is only sampled while tracing: untraced solves pay
        // two branch checks, not two clock reads.
        let wall_t0 = trace_enabled().then(Instant::now);
        let (mut outcome, solve_tel) = self.solve_job(job)?;
        if injected == Some(InjectedFault::NanOutcome) {
            outcome.pct_p2p[0] = f64::NAN;
        }
        // run_noise guards its own output, but re-validate here so the
        // engine boundary holds even for injected (or future alternate)
        // producers of NoiseOutcome.
        if let Some((node, value)) = outcome.first_non_finite() {
            return Err(PdnError::Diverged {
                t: job.cfg.window_s.unwrap_or(0.0),
                node,
                value,
            });
        }
        let outcome = Arc::new(outcome);
        self.solves.fetch_add(1, Ordering::Relaxed);
        let wall_ns = wall_t0.map(|t0| t0.elapsed().as_nanos() as u64);
        // Spectral fingerprints of any captured traces, computed
        // outside the telemetry lock (an FFT over a resampled trace,
        // paid only by trace-recording jobs). Like the wall-clock
        // histograms, signatures observe the campaign: they never
        // enter the outcome, the content key, the cache or the store,
        // so cache and store hits contribute nothing — fingerprints
        // count fresh physics, not replays.
        let signatures: Vec<_> = outcome
            .traces
            .iter()
            .flatten()
            .map(|t| trace_signature(t.times(), t.volts()))
            .collect();
        {
            let mut tel = lock_recover(&self.telemetry);
            tel.record_job(&solve_tel.counters, &solve_tel.phase, wall_ns);
            for sig in &signatures {
                match sig {
                    Ok(sig) => tel.signal.record_signature(sig),
                    Err(_) => tel.signal.record_rejected(),
                }
            }
        }
        if let Some(store) = &self.store {
            store.append(&job.key().store_digest(), &outcome);
        }
        lock_recover(self.shard(job.key()))
            .entry(job.key().clone())
            .or_insert_with(|| outcome.clone());
        Ok(outcome)
    }

    /// Runs one job through the cache, capturing failure — solver error
    /// or worker panic — as a [`JobFault`] instead of propagating it.
    /// The retry policy grants failing jobs extra attempts (separated by
    /// its deterministic backoff schedule when one is configured); with
    /// `reseed` set, attempt `k` re-runs with `seed + k` and a success
    /// is cached under the reseeded key (never the original key, which
    /// would break the key → content invariant).
    ///
    /// Concurrent callers with the same content key coalesce onto one
    /// solve (singleflight): the first caller solves, the rest block and
    /// share its settled result — the cross-client dedup a serving layer
    /// needs so two clients posting the same job cost one solve.
    ///
    /// # Errors
    ///
    /// Returns the final attempt's [`JobFault`] when every allowed
    /// attempt failed. Failures are never cached; a failing job
    /// re-solves when resubmitted.
    pub fn run_one_settled(&self, job: &SimJob) -> Result<Arc<NoiseOutcome>, JobFault> {
        if let Some(hit) = lock_recover(self.shard(job.key())).get(job.key()) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit.clone());
        }
        // Memory miss: consult the persistent store before solving. A
        // store hit promotes the outcome into the in-memory cache so the
        // disk lookup (and digest computation) happens at most once per
        // key per engine. Cached and stored results are served even when
        // cancellation is requested — they are already paid for, and
        // draining them keeps a cancelled batch's partial results
        // deterministic.
        if self.store.is_some() || !self.read_stores.is_empty() {
            let digest = job.key().store_digest();
            if let Some(outcome) = self.store.as_ref().and_then(|s| s.get(&digest)) {
                self.store_hits.fetch_add(1, Ordering::Relaxed);
                lock_recover(self.shard(job.key()))
                    .entry(job.key().clone())
                    .or_insert_with(|| outcome.clone());
                return Ok(outcome);
            }
            // Read-through shards: sibling workers' files, consulted
            // with a freshness re-scan so records a crashed primary
            // flushed moments ago are visible. Hits promote into the
            // memory cache but are never re-appended to this engine's
            // own store — across a fleet, each solved key lives in
            // exactly one shard file.
            for store in &self.read_stores {
                if let Some(outcome) = store.get_fresh(&digest) {
                    self.read_store_hits.fetch_add(1, Ordering::Relaxed);
                    lock_recover(self.shard(job.key()))
                        .entry(job.key().clone())
                        .or_insert_with(|| outcome.clone());
                    return Ok(outcome);
                }
            }
        }
        // Jobs that would have to *solve* after cancellation fail fast
        // without consuming an attempt (attempts = 0: the solver was
        // never entered). The fault kind carries the token's reason, so
        // a deadline-reaped request reports Deadline, not Cancelled.
        if let Some(abort) = self.pre_solve_abort(job) {
            return Err(self.record_fault(job, 0, FaultKind::of_error(abort)));
        }
        // Singleflight: one leader per distinct in-flight key; everyone
        // else attaches to the leader's slot and waits for settlement.
        let (slot, leader) = {
            let mut inflight = lock_recover(&self.inflight);
            match inflight.get(job.key()) {
                Some(slot) => (slot.clone(), false),
                None => {
                    let slot = Arc::new(InflightSlot::default());
                    inflight.insert(job.key().clone(), slot.clone());
                    (slot, true)
                }
            }
        };
        if !leader {
            self.inflight_joins.fetch_add(1, Ordering::Relaxed);
            let mut settled = lock_recover(&slot.result);
            while settled.is_none() {
                settled = slot
                    .settled
                    .wait(settled)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            // The loop above only exits once the leader published.
            return settled.clone().unwrap_or_else(|| {
                Err(JobFault {
                    key: Box::new(job.key.clone()),
                    attempts: 0,
                    fault: FaultKind::Panic("inflight slot settled empty".to_string()),
                })
            });
        }
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        let result = self.solve_with_retries(job);
        *lock_recover(&slot.result) = Some(result.clone());
        lock_recover(&self.inflight).remove(job.key());
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        slot.settled.notify_all();
        result
    }

    /// Books a terminal fault into the engine's counters and builds the
    /// [`JobFault`] to return.
    fn record_fault(&self, job: &SimJob, attempts: u32, fault: FaultKind) -> JobFault {
        self.faults.fetch_add(1, Ordering::Relaxed);
        match fault {
            FaultKind::Budget(_) => {
                self.budget_faults.fetch_add(1, Ordering::Relaxed);
            }
            FaultKind::Deadline(_) => {
                self.deadline_faults.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        JobFault {
            key: Box::new(job.key.clone()),
            attempts,
            fault,
        }
    }

    /// The retry loop of one leader solve: every attempt the policy
    /// allows, with the deterministic backoff schedule between attempts.
    fn solve_with_retries(&self, job: &SimJob) -> Result<Arc<NoiseOutcome>, JobFault> {
        let max_attempts = self.retry.max_attempts.max(1);
        let mut last_fault: Option<FaultKind> = None;
        let mut attempts_made = 0u32;
        for attempt in 0..max_attempts {
            let reseeded;
            let current: &SimJob = if attempt > 0 && self.retry.reseed {
                reseeded = job.reseeded(job.cfg.seed.wrapping_add(u64::from(attempt)));
                &reseeded
            } else {
                job
            };
            if attempt > 0 {
                self.retries.fetch_add(1, Ordering::Relaxed);
                // The delay is a pure function of (job seed, attempt):
                // reproducible under any worker count (see RetryPolicy).
                let delay_ms = self.retry.backoff_delay_ms(job.cfg.seed, attempt);
                if delay_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(delay_ms));
                }
            }
            attempts_made = attempt + 1;
            match catch_unwind(AssertUnwindSafe(|| self.solve_attempt(current))) {
                Ok(Ok(outcome)) => return Ok(outcome),
                Ok(Err(e)) => {
                    let kind = FaultKind::of_error(e);
                    // Budget exhaustion, cancellation and deadline
                    // reaping are final: retrying is guaranteed to
                    // reproduce them (budgets are deterministic, tokens
                    // stay cancelled), so the attempts a retry policy
                    // would spend are saved.
                    let stop = kind.is_final();
                    last_fault = Some(kind);
                    if stop {
                        break;
                    }
                }
                Err(payload) => {
                    last_fault = Some(FaultKind::Panic(panic_message(payload.as_ref())));
                }
            }
        }
        let fault = last_fault
            .unwrap_or_else(|| FaultKind::Panic("no attempt recorded a fault".to_string()));
        Err(self.record_fault(job, attempts_made, fault))
    }

    /// Runs one job through the cache (solving on a miss). Useful for
    /// adaptive flows — e.g. the Vmin descent — where the next job
    /// depends on the previous outcome. Thin fail-fast wrapper over
    /// [`Engine::run_one_settled`].
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] when the PDN solve fails. Errors are not
    /// cached; a failing job re-solves on retry.
    ///
    /// # Panics
    ///
    /// Re-raises a captured worker panic.
    pub fn run_one(&self, job: &SimJob) -> Result<Arc<NoiseOutcome>, PdnError> {
        match self.run_one_settled(job) {
            Ok(outcome) => Ok(outcome),
            Err(JobFault {
                fault:
                    FaultKind::Solver(e)
                    | FaultKind::Budget(e)
                    | FaultKind::Cancelled(e)
                    | FaultKind::Deadline(e),
                ..
            }) => Err(e),
            Err(JobFault {
                fault: FaultKind::Panic(msg),
                ..
            }) => panic!("{msg}"),
        }
    }

    /// Runs a slice of jobs, deduplicating by content key up front (each
    /// distinct key solves at most once per call) and executing the
    /// distinct jobs on the worker pool, capturing each unique job's
    /// failure as a [`JobFault`] in its output slots. The output
    /// preserves input order: `result[i]` settles `jobs[i]`, and
    /// duplicate jobs share one result (including a shared fault).
    pub fn run_jobs_settled(&self, jobs: &[SimJob]) -> Vec<Result<Arc<NoiseOutcome>, JobFault>> {
        let mut index_of: HashMap<&JobKey, usize> = HashMap::new();
        let mut unique: Vec<&SimJob> = Vec::new();
        let mut slots: Vec<usize> = Vec::with_capacity(jobs.len());
        for job in jobs {
            let next = unique.len();
            let idx = *index_of.entry(job.key()).or_insert(next);
            if idx == next {
                unique.push(job);
            }
            slots.push(idx);
        }
        let solved: Vec<Result<Arc<NoiseOutcome>, JobFault>> = self
            .par_map_caught(&unique, |job| self.run_one_settled(job))
            .into_iter()
            .zip(&unique)
            .map(|(r, job)| match r {
                Ok(settled) => settled,
                // A panic that escaped run_one_settled's own catch (it
                // should not happen — the solve path is fully guarded).
                Err(msg) => {
                    self.faults.fetch_add(1, Ordering::Relaxed);
                    Err(JobFault {
                        key: Box::new(job.key().clone()),
                        attempts: 1,
                        fault: FaultKind::Panic(msg),
                    })
                }
            })
            .collect();
        slots.into_iter().map(|i| solved[i].clone()).collect()
    }

    /// Like [`Engine::run_jobs_settled`], but additionally invokes
    /// `sink(i, &result)` — from worker threads, as each distinct job
    /// settles — for every input slot `i` the settled job fills. A
    /// serving layer maps this onto a streamed response: clients see
    /// each job's result the moment it settles instead of waiting for
    /// the whole batch. Duplicate jobs coalesce exactly as in
    /// `run_jobs_settled`; their slots are all announced when the one
    /// shared solve settles. The full input-ordered result vector is
    /// still returned.
    pub fn run_jobs_settled_each<F>(
        &self,
        jobs: &[SimJob],
        sink: F,
    ) -> Vec<Result<Arc<NoiseOutcome>, JobFault>>
    where
        F: Fn(usize, &Result<Arc<NoiseOutcome>, JobFault>) + Sync,
    {
        let mut index_of: HashMap<&JobKey, usize> = HashMap::new();
        let mut unique: Vec<&SimJob> = Vec::new();
        let mut slots_of: Vec<Vec<usize>> = Vec::new();
        let mut slots: Vec<usize> = Vec::with_capacity(jobs.len());
        for (i, job) in jobs.iter().enumerate() {
            let next = unique.len();
            let idx = *index_of.entry(job.key()).or_insert(next);
            if idx == next {
                unique.push(job);
                slots_of.push(Vec::new());
            }
            slots_of[idx].push(i);
            slots.push(idx);
        }
        let order: Vec<usize> = (0..unique.len()).collect();
        let solved: Vec<Result<Arc<NoiseOutcome>, JobFault>> = self
            .par_map_caught(&order, |&u| {
                let settled = self.run_one_settled(unique[u]);
                for &slot in &slots_of[u] {
                    sink(slot, &settled);
                }
                settled
            })
            .into_iter()
            .zip(&unique)
            .map(|(r, job)| match r {
                Ok(settled) => settled,
                // A panic escaping run_one_settled's catch (or raised by
                // the sink itself) still settles the slot as a fault.
                Err(msg) => {
                    self.faults.fetch_add(1, Ordering::Relaxed);
                    Err(JobFault {
                        key: Box::new(job.key().clone()),
                        attempts: 1,
                        fault: FaultKind::Panic(msg),
                    })
                }
            })
            .collect();
        slots.into_iter().map(|i| solved[i].clone()).collect()
    }

    /// Runs a slice of jobs fail-fast: a thin wrapper over
    /// [`Engine::run_jobs_settled`] that unwraps the first failure. The
    /// output preserves input order: `result[i]` is the outcome of
    /// `jobs[i]`.
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-indexed failing job — the same
    /// error a serial run would return — so parallel and serial
    /// execution are indistinguishable to callers.
    ///
    /// # Panics
    ///
    /// Re-raises the lowest-indexed captured worker panic.
    pub fn run_jobs(&self, jobs: &[SimJob]) -> Result<Vec<Arc<NoiseOutcome>>, PdnError> {
        let mut out = Vec::with_capacity(jobs.len());
        for settled in self.run_jobs_settled(jobs) {
            match settled {
                Ok(outcome) => out.push(outcome),
                Err(JobFault {
                    fault:
                        FaultKind::Solver(e)
                        | FaultKind::Budget(e)
                        | FaultKind::Cancelled(e)
                        | FaultKind::Deadline(e),
                    ..
                }) => return Err(e),
                Err(JobFault {
                    fault: FaultKind::Panic(msg),
                    ..
                }) => panic!("{msg}"),
            }
        }
        Ok(out)
    }

    /// Applies a function to each item on the worker pool, capturing
    /// worker panics as `Err(message)` so one panicking item cannot
    /// tear down the whole batch. Results arrive in input order. The
    /// serial (1-worker) path catches panics identically, keeping
    /// parallel and serial behavior aligned.
    pub fn par_map_caught<T, U, F>(&self, items: &[T], f: F) -> Vec<Result<U, String>>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        let n = items.len();
        let workers = self.workers.min(n);
        let call = |item: &T| -> Result<U, String> {
            catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|p| panic_message(p.as_ref()))
        };
        if workers <= 1 {
            return items.iter().map(call).collect();
        }
        let results: Vec<Mutex<Option<Result<U, String>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    *lock_recover(&results[i]) = Some(call(&items[i]));
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .unwrap_or_else(|| Err("worker never filled result slot".to_string()))
            })
            .collect()
    }

    /// Applies a fallible function to each item on the worker pool and
    /// collects the results in input order. The generic escape hatch for
    /// parallel work that is not a plain job list (e.g. one Vmin descent
    /// per grid cell).
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-indexed failing item, matching
    /// serial semantics.
    ///
    /// # Panics
    ///
    /// Re-raises the lowest-indexed captured worker panic.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Result<Vec<U>, PdnError>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> Result<U, PdnError> + Sync,
    {
        let mut out = Vec::with_capacity(items.len());
        for settled in self.par_map_caught(items, |item| f(item)) {
            match settled {
                Ok(Ok(u)) => out.push(u),
                Ok(Err(e)) => return Err(e),
                Err(msg) => panic!("{msg}"),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::Testbed;
    use voltnoise_stressmark::SyncSpec;

    fn test_jobs(tb: &Testbed) -> Vec<SimJob> {
        let batch = SimJob::batch(tb.chip());
        [45e3, 2.5e6]
            .iter()
            .map(|&f| {
                let sm = tb.max_stressmark(f, Some(SyncSpec::paper_default()));
                let loads = SiteVec::from_fn(NUM_CORES, |_| CoreLoad::Stressmark(sm.clone()));
                batch.job(
                    loads,
                    NoiseRunConfig {
                        window_s: Some(25e-6),
                        record_traces: false,
                        seed: 1,
                        ..NoiseRunConfig::default()
                    },
                )
            })
            .collect()
    }

    #[test]
    fn parallel_equals_serial_bitwise() {
        let tb = Testbed::fast();
        let jobs = test_jobs(tb);
        let serial = Engine::with_workers(1).run_jobs(&jobs).unwrap();
        let parallel = Engine::with_workers(4).run_jobs(&jobs).unwrap();
        for (s, p) in serial.iter().zip(&parallel) {
            let js = serde_json::to_string(&**s).unwrap();
            let jp = serde_json::to_string(&**p).unwrap();
            assert_eq!(js, jp);
        }
    }

    #[test]
    fn identical_jobs_solve_once() {
        let tb = Testbed::fast();
        let engine = Engine::with_workers(2);
        let jobs = test_jobs(tb);
        // Duplicate every job: within one run_jobs call the duplicates
        // must coalesce.
        let doubled: Vec<SimJob> = jobs.iter().chain(jobs.iter()).cloned().collect();
        let outcomes = engine.run_jobs(&doubled).unwrap();
        assert_eq!(outcomes.len(), doubled.len());
        assert_eq!(engine.solves(), jobs.len());
        // A second identical run is served entirely from the cache.
        let before = engine.solves();
        engine.run_jobs(&doubled).unwrap();
        assert_eq!(engine.solves(), before, "second run must not solve");
        // Duplicates coalesce before the cache, so the second run scores
        // one hit per *distinct* job.
        assert_eq!(engine.cache_hits(), jobs.len());
    }

    #[test]
    fn traced_solves_record_spectral_fingerprints_once() {
        let tb = Testbed::fast();
        let engine = Engine::with_workers(2);
        let batch = SimJob::batch(tb.chip());
        let sm = tb.max_stressmark(2.5e6, Some(SyncSpec::paper_default()));
        let loads: [CoreLoad; NUM_CORES] =
            std::array::from_fn(|_| CoreLoad::Stressmark(sm.clone()));
        let job = batch.job(
            loads,
            NoiseRunConfig {
                window_s: Some(20e-6),
                record_traces: true,
                seed: 1,
                ..NoiseRunConfig::default()
            },
        );
        engine.run_jobs(std::slice::from_ref(&job)).unwrap();
        let signal = engine.stats().telemetry.signal;
        assert_eq!(signal.traces, NUM_CORES as u64);
        assert_eq!(signal.rejected, 0);
        assert_eq!(signal.peak_freq_hz.count(), NUM_CORES as u64);
        // The 2.5 MHz stimulus dominates every core's spectrum, so
        // each peak lands in the 2^21-floor frequency bucket.
        assert_eq!(signal.peak_freq_hz.median(), Some(1 << 21));
        // Cache hits replay physics and must not re-fingerprint.
        engine.run_jobs(std::slice::from_ref(&job)).unwrap();
        assert_eq!(engine.stats().telemetry.signal.traces, NUM_CORES as u64);
        // Untraced jobs contribute nothing.
        let untraced = Engine::with_workers(1);
        untraced.run_jobs(&test_jobs(tb)).unwrap();
        assert_eq!(untraced.stats().telemetry.signal.traces, 0);
    }

    #[test]
    fn distinct_configs_get_distinct_keys() {
        let tb = Testbed::fast();
        let batch = SimJob::batch(tb.chip());
        let sm = tb.max_stressmark(2.5e6, None);
        let loads: [CoreLoad; NUM_CORES] =
            std::array::from_fn(|_| CoreLoad::Stressmark(sm.clone()));
        let base = NoiseRunConfig {
            window_s: Some(25e-6),
            record_traces: false,
            seed: 1,
            ..NoiseRunConfig::default()
        };
        let a = batch.job(loads.clone(), base.clone());
        let b = batch.job(
            loads.clone(),
            NoiseRunConfig {
                seed: 2,
                ..base.clone()
            },
        );
        let c = batch.job(
            loads.clone(),
            NoiseRunConfig {
                window_s: Some(30e-6),
                ..base.clone()
            },
        );
        let d = batch.job(
            loads,
            NoiseRunConfig {
                record_traces: true,
                ..base.clone()
            },
        );
        let e = batch.job(
            SiteVec::from_fn(NUM_CORES, |_| CoreLoad::Stressmark(sm.clone())),
            NoiseRunConfig {
                solve: SolveSpec {
                    backend: SolverBackend::Dense,
                    rom: None,
                },
                ..base.clone()
            },
        );
        let f = batch.job(
            SiteVec::from_fn(NUM_CORES, |_| CoreLoad::Stressmark(sm.clone())),
            NoiseRunConfig {
                solve: SolveSpec::reduced(voltnoise_pdn::RomSpec::default()),
                ..base.clone()
            },
        );
        let keys = [a.key(), b.key(), c.key(), d.key(), e.key(), f.key()];
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j], "jobs {i} and {j} must differ");
                assert_ne!(
                    keys[i].store_digest(),
                    keys[j].store_digest(),
                    "digests {i} and {j} must differ"
                );
            }
        }
        // A ROM budget change alone changes the key: the budget is
        // content.
        let g = batch.job(
            SiteVec::from_fn(NUM_CORES, |_| CoreLoad::Idle),
            NoiseRunConfig {
                solve: SolveSpec::reduced(voltnoise_pdn::RomSpec {
                    budget_v: 2e-3,
                    ..voltnoise_pdn::RomSpec::default()
                }),
                ..NoiseRunConfig::default()
            },
        );
        let h = batch.job(
            SiteVec::from_fn(NUM_CORES, |_| CoreLoad::Idle),
            NoiseRunConfig {
                solve: SolveSpec::reduced(voltnoise_pdn::RomSpec::default()),
                ..NoiseRunConfig::default()
            },
        );
        assert_ne!(g.key(), h.key());
        assert_ne!(g.key().store_digest(), h.key().store_digest());
    }

    #[test]
    fn stats_json_round_trips_with_rom_counters() {
        let mut stats = Engine::with_workers(3).stats();
        stats.telemetry.solver.batched_solves = 7;
        stats.telemetry.solver.rom_solves = 11;
        stats.telemetry.solver.rom_states = 13;
        let json = stats.to_json().unwrap();
        let back = EngineStats::from_json(&json).unwrap();
        assert_eq!(stats, back);
        assert_eq!(back.telemetry.solver.rom_states, 13);
    }

    #[test]
    fn undervolted_chip_changes_the_signature() {
        let tb = Testbed::fast();
        let nominal = chip_signature(tb.chip());
        let lowered = chip_signature(&tb.chip().undervolted(-0.02).unwrap());
        assert_ne!(nominal, lowered);
        // And an identical rebuild matches.
        assert_eq!(nominal, chip_signature(tb.chip()));
    }

    #[test]
    fn par_map_preserves_order_and_first_error() {
        let engine = Engine::with_workers(4);
        let items: Vec<usize> = (0..40).collect();
        let ok = engine.par_map(&items, |&i| Ok(i * 2)).unwrap();
        assert_eq!(ok, items.iter().map(|i| i * 2).collect::<Vec<_>>());
        let err = engine
            .par_map(&items, |&i| {
                if i >= 7 {
                    Err(PdnError::UnknownNode { node: i })
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
        assert!(matches!(err, PdnError::UnknownNode { node: 7 }), "{err:?}");
    }

    #[test]
    fn par_map_caught_captures_panics_in_order() {
        for workers in [1, 4] {
            let engine = Engine::with_workers(workers);
            let items: Vec<usize> = (0..20).collect();
            let settled = engine.par_map_caught(&items, |&i| {
                assert!(i != 13, "unlucky item");
                i * 10
            });
            for (i, r) in settled.iter().enumerate() {
                if i == 13 {
                    let msg = r.as_ref().unwrap_err();
                    assert!(msg.contains("unlucky item"), "{msg}");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 10, "workers={workers}");
                }
            }
        }
    }

    #[test]
    fn drawer_jobs_memoize_by_content() {
        let engine = Engine::with_workers(1);
        let cfg = DrawerStepConfig {
            window_s: 1e-6,
            ..DrawerStepConfig::default()
        };
        let job = DrawerJob::new(cfg.clone()).unwrap();
        let first = engine.run_drawer(&job).unwrap();
        assert_eq!(engine.solves(), 1);
        // Same content, fresh job value: answered from the memo.
        let again = engine
            .run_drawer(&DrawerJob::new(cfg.clone()).unwrap())
            .unwrap();
        assert_eq!(engine.solves(), 1, "identical drawer jobs solve once");
        assert_eq!(engine.cache_hits(), 1);
        assert_eq!(
            serde_json::to_string(&*first).unwrap(),
            serde_json::to_string(&*again).unwrap()
        );
        // Different content gets a different digest and its own solve.
        let other = DrawerJob::new(DrawerStepConfig {
            step_amps: cfg.step_amps * 2.0,
            ..cfg
        })
        .unwrap();
        assert_ne!(job.digest(), other.digest());
        engine.run_drawer(&other).unwrap();
        assert_eq!(engine.solves(), 2);
        // Drawer solves feed the same aggregated telemetry as chip jobs,
        // including the sparse-backend counters.
        let tel = engine.telemetry();
        assert!(tel.solver.sparse_solves > 0, "{:?}", tel.solver);
        assert!(tel.solver.pattern_reuses > 0, "{:?}", tel.solver);
    }

    #[test]
    fn concurrent_identical_jobs_singleflight_onto_one_solve() {
        let tb = Testbed::fast();
        let job = &test_jobs(tb)[0];
        let engine = Engine::with_workers(4);
        const CALLERS: usize = 6;
        let outcomes: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CALLERS)
                .map(|_| scope.spawn(|| engine.run_one_settled(job)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for settled in &outcomes {
            assert!(settled.is_ok());
        }
        // Exactly one caller solved; the rest either joined the
        // in-flight slot or arrived after settlement and hit the cache.
        assert_eq!(engine.solves(), 1, "one solve across {CALLERS} callers");
        assert_eq!(
            engine.inflight_joins() + engine.cache_hits(),
            CALLERS - 1,
            "joins={} hits={}",
            engine.inflight_joins(),
            engine.cache_hits()
        );
        assert_eq!(engine.in_flight(), 0, "gauge returns to zero");
        let first = serde_json::to_string(&**outcomes[0].as_ref().unwrap()).unwrap();
        for settled in &outcomes[1..] {
            let other = serde_json::to_string(&**settled.as_ref().unwrap()).unwrap();
            assert_eq!(first, other, "all callers share one result");
        }
    }

    #[test]
    fn deadline_cancelled_jobs_settle_as_deadline_faults() {
        let tb = Testbed::fast();
        let token = voltnoise_pdn::CancelToken::new();
        token.cancel_deadline();
        let engine = Engine::with_workers(1).with_cancel(token);
        let jobs = test_jobs(tb);
        let settled = engine.run_jobs_settled(&jobs);
        for s in &settled {
            let fault = s.as_ref().unwrap_err();
            assert!(
                matches!(fault.fault, FaultKind::Deadline(_)),
                "{:?}",
                fault.fault
            );
            assert_eq!(fault.attempts, 0, "solver never entered");
        }
        assert_eq!(engine.deadline_faults(), jobs.len());
        assert_eq!(engine.budget_faults(), 0);
        let stats = engine.stats();
        assert_eq!(stats.deadline_faults, jobs.len());
        // The fail-fast wrapper surfaces the typed error.
        let err = engine.run_one(&jobs[0]).unwrap_err();
        assert!(matches!(err, PdnError::DeadlineExceeded { .. }), "{err:?}");
    }

    #[test]
    fn settled_each_streams_every_slot_exactly_once() {
        let tb = Testbed::fast();
        let engine = Engine::with_workers(2);
        let jobs = test_jobs(tb);
        let doubled: Vec<SimJob> = jobs.iter().chain(jobs.iter()).cloned().collect();
        let announced: Mutex<Vec<(usize, bool)>> = Mutex::new(Vec::new());
        let returned = engine.run_jobs_settled_each(&doubled, |slot, settled| {
            lock_recover(&announced).push((slot, settled.is_ok()));
        });
        assert_eq!(returned.len(), doubled.len());
        let mut seen = lock_recover(&announced).clone();
        seen.sort_unstable();
        assert_eq!(
            seen.iter().map(|&(slot, _)| slot).collect::<Vec<_>>(),
            (0..doubled.len()).collect::<Vec<_>>(),
            "every slot announced exactly once"
        );
        for (slot, ok) in seen {
            assert_eq!(ok, returned[slot].is_ok());
        }
        // Duplicates still coalesce: one solve per distinct job.
        assert_eq!(engine.solves(), jobs.len());
    }

    #[test]
    fn serving_gauges_flow_into_stats() {
        let engine = Engine::with_workers(1);
        engine.set_queue_depth(5);
        engine.note_shed();
        engine.note_shed();
        let stats = engine.stats();
        assert_eq!(stats.queue_depth, 5);
        assert_eq!(stats.shed_total, 2);
        assert_eq!(engine.shed_total(), 2);
        engine.set_queue_depth(0);
        assert_eq!(engine.stats().queue_depth, 0);
        let json = stats.to_json().unwrap();
        let back = EngineStats::from_json(&json).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn parsed_workers_accepts_positive_integers() {
        assert_eq!(parsed_workers("1"), Ok(1));
        assert_eq!(parsed_workers(" 8 "), Ok(8));
        assert_eq!(parsed_workers("32"), Ok(32));
    }

    #[test]
    fn parsed_workers_rejects_garbage_and_zero() {
        assert!(parsed_workers("0").is_err());
        assert!(parsed_workers("-2").is_err());
        assert!(parsed_workers("four").is_err());
        assert!(parsed_workers("2.5").is_err());
        assert!(parsed_workers("").is_err());
    }

    #[test]
    fn lock_recover_survives_poisoning() {
        let m = Arc::new(Mutex::new(vec![1, 2, 3]));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.is_poisoned(), "setup: lock must be poisoned");
        let mut guard = lock_recover(&m);
        guard.push(4);
        assert_eq!(*guard, vec![1, 2, 3, 4]);
    }
}
