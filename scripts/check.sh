#!/usr/bin/env bash
# Workspace gate: formatting, lints, tests. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy (solver/engine library code, unwrap/expect are errors)"
# Both crate roots carry
# `#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]`;
# checking the library targets (no cfg(test)) enforces it, and tests may
# still unwrap freely.
cargo clippy -p voltnoise-pdn -p voltnoise-system --lib -- -D warnings

echo "== cargo test"
cargo test -q

echo "== fault-injection suite"
cargo test -q -p voltnoise --test fault_tolerance

echo "== durability suite"
cargo test -q -p voltnoise --test durability

echo "== kill-and-resume smoke test"
scripts/resume_smoke.sh

echo "== telemetry suite"
cargo test -q -p voltnoise --test telemetry

echo "== signal suite (spectral + entropy analytic ground truths)"
cargo test -q -p voltnoise --test signal

echo "== server smoke test"
scripts/server_smoke.sh

echo "== fleet chaos smoke test"
scripts/chaos_smoke.sh

echo "== benchmark smoke test"
scripts/bench.sh --smoke --out target/BENCH_smoke.json

echo "All checks passed."
