//! Quickstart: build the platform, generate a synchronized maximum dI/dt
//! stressmark at the resonant band, run it on all six cores and read the
//! per-core skitter noise sensors.
//!
//! Run with: `cargo run --release --example quickstart`

use voltnoise::prelude::*;

fn main() {
    println!("== voltnoise quickstart ==");
    println!("building the testbed (EPI profile + sequence search)...");
    let tb = Testbed::shared();

    let max = tb.max_sequence();
    println!(
        "maximum-power sequence: {:?}  ({:.2} W, IPC {:.2})",
        max.mnemonics, max.power_w, max.ipc
    );
    println!(
        "minimum-power sequence: {:?}  ({:.2} W)",
        tb.min_sequence().mnemonics,
        tb.min_sequence().power_w
    );

    // A synchronized stressmark in the die resonant band (paper §V-B).
    let sm = tb.max_stressmark(2.5e6, Some(SyncSpec::paper_default()));
    println!(
        "stressmark: dI = {:.1} A per core ({:.1} A high / {:.1} A low), {} high reps per phase",
        sm.delta_i(),
        sm.i_high_a,
        sm.i_low_a,
        sm.high_reps
    );

    // Run one copy on every core.
    let loads: [CoreLoad; NUM_CORES] = std::array::from_fn(|_| CoreLoad::Stressmark(sm.clone()));
    let noise = run_noise(tb.chip(), &loads, &NoiseRunConfig::default())
        .expect("noise simulation runs on the default chip");

    println!("\nper-core skitter readings:");
    for (i, pct) in noise.pct_p2p.iter().enumerate() {
        println!(
            "  core {i}: {pct:5.1} %p2p   (v_min {:.4} V, v_max {:.4} V)",
            noise.v_min[i], noise.v_max[i]
        );
    }
    let (worst_core, worst) = noise.worst();
    println!("\nworst-case noise: {worst:.1} %p2p on core {worst_core}");
    println!("chip power: {}", noise.chip_power);

    // Compare with the unsynchronized version (Fig. 7a vs Fig. 9).
    let sm_unsync = tb.max_stressmark(2.5e6, None);
    let loads: [CoreLoad; NUM_CORES] =
        std::array::from_fn(|_| CoreLoad::Stressmark(sm_unsync.clone()));
    let unsync = run_noise(tb.chip(), &loads, &NoiseRunConfig::default())
        .expect("noise simulation runs on the default chip");
    println!(
        "without TOD synchronization: {:.1} %p2p  (synchronization bonus: {:+.1} points)",
        unsync.max_pct_p2p(),
        worst - unsync.max_pct_p2p()
    );
}
