//! PDN parameter sensitivity: how each package/board element moves the
//! resonant bands.
//!
//! This supports the paper's stated purpose for the methodology —
//! "determining the optimal voltage levels and package characteristics"
//! (§I) — by quantifying, per element, how a relative perturbation shifts
//! the die-band resonance frequency and magnitude.

use crate::ac::{find_peaks, log_space, AcAnalysis};
use crate::error::PdnError;
use crate::topology::{ChipPdn, PdnParams};
use serde::{Deserialize, Serialize};

/// A perturbable PDN parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PdnParameter {
    /// Board inductance.
    BoardInductance,
    /// Package bulk decap.
    PackageDecap,
    /// C4/via inductance per domain.
    C4Inductance,
    /// Per-domain on-die decap.
    DomainDecap,
    /// L3/eDRAM decap.
    L3Decap,
    /// Per-domain decap ESR.
    DomainEsr,
}

impl PdnParameter {
    /// Every perturbable parameter.
    pub const ALL: [PdnParameter; 6] = [
        PdnParameter::BoardInductance,
        PdnParameter::PackageDecap,
        PdnParameter::C4Inductance,
        PdnParameter::DomainDecap,
        PdnParameter::L3Decap,
        PdnParameter::DomainEsr,
    ];

    /// Applies a multiplicative perturbation to the parameter.
    pub fn scale(self, params: &mut PdnParams, factor: f64) {
        match self {
            PdnParameter::BoardInductance => params.l_board *= factor,
            PdnParameter::PackageDecap => params.c_pkg *= factor,
            PdnParameter::C4Inductance => params.l_c4 *= factor,
            PdnParameter::DomainDecap => params.c_domain *= factor,
            PdnParameter::L3Decap => params.c_l3 *= factor,
            PdnParameter::DomainEsr => params.esr_domain *= factor,
        }
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            PdnParameter::BoardInductance => "l_board",
            PdnParameter::PackageDecap => "c_pkg",
            PdnParameter::C4Inductance => "l_c4",
            PdnParameter::DomainDecap => "c_domain",
            PdnParameter::L3Decap => "c_l3",
            PdnParameter::DomainEsr => "esr_domain",
        }
    }
}

/// The die band of a parameter-perturbed design.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandPoint {
    /// Perturbation factor applied.
    pub factor: f64,
    /// Die-band resonance frequency (Hz); 0 when no peak is found.
    pub freq_hz: f64,
    /// Peak impedance magnitude (ohms).
    pub z_ohm: f64,
}

/// Sensitivity of the die band to one parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParameterSensitivity {
    /// The perturbed parameter.
    pub parameter: PdnParameter,
    /// Band measurements per perturbation factor (ascending factors).
    pub points: Vec<BandPoint>,
}

impl ParameterSensitivity {
    /// Logarithmic frequency sensitivity `d ln(f) / d ln(factor)` between
    /// the first and last point (≈ −0.5 for the LC pair members).
    pub fn log_slope(&self) -> f64 {
        let (Some(first), Some(last)) = (self.points.first(), self.points.last()) else {
            return 0.0;
        };
        if first.freq_hz <= 0.0 || last.freq_hz <= 0.0 {
            return 0.0;
        }
        (last.freq_hz / first.freq_hz).ln() / (last.factor / first.factor).ln()
    }
}

fn die_band(params: &PdnParams) -> Result<(f64, f64), PdnError> {
    let chip = ChipPdn::build(params)?;
    let ac = AcAnalysis::new(chip.netlist());
    let freqs = log_space(3e5, 30e6, 180)?;
    let profile = ac.sweep(chip.core_node(0), &freqs)?;
    Ok(find_peaks(&profile)?.first().copied().unwrap_or((0.0, 0.0)))
}

/// Sweeps one parameter over the given factors.
///
/// # Errors
///
/// Returns [`PdnError`] if a build or AC solve fails.
pub fn parameter_sensitivity(
    base: &PdnParams,
    parameter: PdnParameter,
    factors: &[f64],
) -> Result<ParameterSensitivity, PdnError> {
    let mut points = Vec::with_capacity(factors.len());
    for &factor in factors {
        let mut p = base.clone();
        parameter.scale(&mut p, factor);
        let (freq_hz, z_ohm) = die_band(&p)?;
        points.push(BandPoint {
            factor,
            freq_hz,
            z_ohm,
        });
    }
    Ok(ParameterSensitivity { parameter, points })
}

/// Runs the sweep for every parameter and renders a report.
///
/// # Errors
///
/// Returns [`PdnError`] if a build or AC solve fails.
pub fn full_sensitivity(base: &PdnParams, factors: &[f64]) -> Result<String, PdnError> {
    let mut out = String::from(
        "# PDN parameter sensitivity of the die-band resonance\nparameter,factor,freq_hz,z_mohm\n",
    );
    for parameter in PdnParameter::ALL {
        let s = parameter_sensitivity(base, parameter, factors)?;
        for p in &s.points {
            out.push_str(&format!(
                "{},{:.2},{:.4e},{:.4}\n",
                parameter.name(),
                p.factor,
                p.freq_hz,
                p.z_ohm * 1e3
            ));
        }
        out.push_str(&format!(
            "# {} log-slope d ln f / d ln x = {:.2}\n",
            parameter.name(),
            s.log_slope()
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FACTORS: [f64; 3] = [0.5, 1.0, 2.0];

    #[test]
    fn c4_inductance_moves_band_down() {
        // f = 1/(2*pi*sqrt(L_eff*C)): the C4 inductance is part (not all)
        // of the effective loop inductance, so the log-slope sits between
        // the ideal -0.5 and 0.
        let s = parameter_sensitivity(&PdnParams::default(), PdnParameter::C4Inductance, &FACTORS)
            .unwrap();
        let slope = s.log_slope();
        assert!((-0.65..=-0.15).contains(&slope), "slope = {slope}");
        assert!(s.points[0].freq_hz > s.points[2].freq_hz);
    }

    #[test]
    fn domain_decap_moves_band_down() {
        let s = parameter_sensitivity(&PdnParams::default(), PdnParameter::DomainDecap, &FACTORS)
            .unwrap();
        assert!(s.points[0].freq_hz > s.points[2].freq_hz);
        assert!(s.log_slope() < -0.1);
    }

    #[test]
    fn esr_damps_peak_without_moving_it_much() {
        let s = parameter_sensitivity(&PdnParams::default(), PdnParameter::DomainEsr, &FACTORS)
            .unwrap();
        // Magnitude drops with more ESR...
        assert!(s.points[2].z_ohm < s.points[0].z_ohm);
        // ...while frequency stays within ~20 %.
        assert!(s.log_slope().abs() < 0.3, "slope = {}", s.log_slope());
    }

    #[test]
    fn board_inductance_barely_touches_die_band() {
        let s = parameter_sensitivity(
            &PdnParams::default(),
            PdnParameter::BoardInductance,
            &FACTORS,
        )
        .unwrap();
        assert!(s.log_slope().abs() < 0.1, "slope = {}", s.log_slope());
    }

    #[test]
    fn full_report_covers_all_parameters() {
        let report = full_sensitivity(&PdnParams::default(), &FACTORS).unwrap();
        for p in PdnParameter::ALL {
            assert!(report.contains(p.name()));
        }
    }
}
