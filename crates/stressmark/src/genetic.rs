//! Genetic-algorithm sequence search — the optimization-layer extension
//! the paper points at: "It would be possible to implement optimization
//! algorithms — such as the genetic algorithms employed in previous works
//! \[26\] — on top of the presented solution" (§IV-C).
//!
//! The GA evolves length-[`SEQ_LEN`] sequences
//! over the nine selected candidates, using measured loop power as the
//! fitness. It is an *alternative* to the exhaustive funnel of
//! [`crate::search`]; the tests check it reaches the funnel winner's
//! power within a few percent at a fraction of the evaluations.

use crate::filter::{microarch_filter, FilterConfig, SEQ_LEN};
use crate::search::SequenceEval;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use voltnoise_uarch::isa::{Isa, Opcode};
use voltnoise_uarch::kernel::Kernel;
use voltnoise_uarch::pipeline::CoreConfig;

/// GA configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Individuals per generation.
    pub population: usize,
    /// Generations to evolve.
    pub generations: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Elite individuals copied unchanged each generation.
    pub elites: usize,
    /// Loop iterations per fitness evaluation.
    pub eval_iterations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 40,
            generations: 25,
            mutation_rate: 0.15,
            tournament: 3,
            elites: 2,
            eval_iterations: 120,
            seed: 1,
        }
    }
}

/// Outcome of a GA run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaOutcome {
    /// The fittest sequence found.
    pub best: SequenceEval,
    /// Total fitness evaluations performed (cache misses only).
    pub evaluations: usize,
    /// Best power per generation, for convergence plots.
    pub history: Vec<f64>,
}

type Genome = [Opcode; SEQ_LEN];

fn evaluate(isa: &Isa, core: &CoreConfig, genome: &Genome, iterations: usize) -> SequenceEval {
    let m = Kernel::from_sequence("ga_eval", genome.to_vec(), iterations).run(isa, core);
    SequenceEval {
        body: genome.to_vec(),
        mnemonics: genome
            .iter()
            .map(|&op| isa.def(op).mnemonic.clone())
            .collect(),
        ipc: m.ipc,
        power_w: m.avg_power_w,
        current_a: m.avg_current_a,
    }
}

/// Runs the GA over the candidate alphabet.
///
/// Individuals violating the microarchitectural filter are penalized
/// (fitness = measured power × 0.5) rather than discarded, which keeps
/// the search space connected while steering toward feasible sequences.
///
/// # Panics
///
/// Panics if `candidates` is empty or the population/tournament are zero.
pub fn ga_search(isa: &Isa, core: &CoreConfig, candidates: &[Opcode], cfg: &GaConfig) -> GaOutcome {
    assert!(!candidates.is_empty(), "need candidates");
    assert!(
        cfg.population >= 2 && cfg.tournament >= 1,
        "degenerate GA config"
    );
    let filter = FilterConfig::default();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut cache: std::collections::HashMap<Vec<u16>, f64> = std::collections::HashMap::new();
    let mut evaluations = 0usize;

    let random_genome = |rng: &mut SmallRng| -> Genome {
        std::array::from_fn(|_| candidates[rng.gen_range(0..candidates.len())])
    };
    let mut population: Vec<Genome> = (0..cfg.population)
        .map(|_| random_genome(&mut rng))
        .collect();

    let fitness_of = |genome: &Genome,
                      cache: &mut std::collections::HashMap<Vec<u16>, f64>,
                      evaluations: &mut usize|
     -> f64 {
        let key: Vec<u16> = genome.iter().map(|op| op.index() as u16).collect();
        if let Some(&f) = cache.get(&key) {
            return f;
        }
        *evaluations += 1;
        let power = evaluate(isa, core, genome, cfg.eval_iterations).power_w;
        let fit = if microarch_filter(isa, core, &filter, genome) {
            power
        } else {
            power * 0.5
        };
        cache.insert(key, fit);
        fit
    };

    let mut history = Vec::with_capacity(cfg.generations);
    let mut best_genome = population[0];
    let mut best_fit = f64::NEG_INFINITY;

    for _gen in 0..cfg.generations {
        let fits: Vec<f64> = population
            .iter()
            .map(|g| fitness_of(g, &mut cache, &mut evaluations))
            .collect();
        // Track the best feasible individual.
        for (g, &f) in population.iter().zip(&fits) {
            if f > best_fit {
                best_fit = f;
                best_genome = *g;
            }
        }
        history.push(best_fit);

        // Elitism: keep the top individuals.
        let mut order: Vec<usize> = (0..population.len()).collect();
        order.sort_by(|&a, &b| fits[b].total_cmp(&fits[a]));
        let mut next: Vec<Genome> = order
            .iter()
            .take(cfg.elites)
            .map(|&i| population[i])
            .collect();

        // Tournament selection + single-point crossover + mutation.
        let select = |rng: &mut SmallRng| -> Genome {
            let mut best_i = rng.gen_range(0..population.len());
            for _ in 1..cfg.tournament {
                let i = rng.gen_range(0..population.len());
                if fits[i] > fits[best_i] {
                    best_i = i;
                }
            }
            population[best_i]
        };
        while next.len() < cfg.population {
            let a = select(&mut rng);
            let b = select(&mut rng);
            let cut = rng.gen_range(1..SEQ_LEN);
            let mut child: Genome = std::array::from_fn(|k| if k < cut { a[k] } else { b[k] });
            for gene in child.iter_mut() {
                if rng.gen::<f64>() < cfg.mutation_rate {
                    *gene = candidates[rng.gen_range(0..candidates.len())];
                }
            }
            next.push(child);
        }
        population = next;
    }

    GaOutcome {
        best: evaluate(isa, core, &best_genome, cfg.eval_iterations),
        evaluations,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::select_candidates;
    use crate::search::{find_max_power_sequence, SearchConfig};
    use std::sync::OnceLock;
    use voltnoise_uarch::epi::EpiProfile;

    struct Fx {
        isa: Isa,
        core: CoreConfig,
        candidates: Vec<Opcode>,
        exhaustive_best_w: f64,
    }

    fn fx() -> &'static Fx {
        static CELL: OnceLock<Fx> = OnceLock::new();
        CELL.get_or_init(|| {
            let isa = Isa::zlike();
            let core = CoreConfig::default();
            let profile = EpiProfile::generate(&isa, &core);
            let candidates: Vec<Opcode> = select_candidates(&isa, &profile)
                .iter()
                .map(|c| c.opcode)
                .collect();
            let outcome = find_max_power_sequence(
                &isa,
                &core,
                &profile,
                &SearchConfig {
                    ipc_keep: 60,
                    eval_iterations: 120,
                },
            );
            Fx {
                isa,
                core,
                candidates,
                exhaustive_best_w: outcome.best.power_w,
            }
        })
    }

    #[test]
    fn ga_approaches_exhaustive_winner_with_fewer_evaluations() {
        let f = fx();
        let out = ga_search(&f.isa, &f.core, &f.candidates, &GaConfig::default());
        let rel = out.best.power_w / f.exhaustive_best_w;
        assert!(
            rel > 0.95,
            "GA best {:.2} W vs exhaustive {:.2} W",
            out.best.power_w,
            f.exhaustive_best_w
        );
        // Far fewer evaluations than the 531 441-combination enumeration
        // and even than the funnel's final stage.
        assert!(out.evaluations < 1200, "evaluations = {}", out.evaluations);
    }

    #[test]
    fn ga_is_deterministic_per_seed() {
        let f = fx();
        let cfg = GaConfig {
            generations: 6,
            population: 16,
            ..GaConfig::default()
        };
        let a = ga_search(&f.isa, &f.core, &f.candidates, &cfg);
        let b = ga_search(&f.isa, &f.core, &f.candidates, &cfg);
        assert_eq!(a.best.body, b.best.body);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn convergence_history_is_non_decreasing() {
        let f = fx();
        let cfg = GaConfig {
            generations: 10,
            population: 20,
            ..GaConfig::default()
        };
        let out = ga_search(&f.isa, &f.core, &f.candidates, &cfg);
        assert!(out.history.windows(2).all(|w| w[1] >= w[0] - 1e-12));
    }

    #[test]
    fn ga_winner_is_microarchitecturally_feasible() {
        let f = fx();
        let out = ga_search(&f.isa, &f.core, &f.candidates, &GaConfig::default());
        assert!(microarch_filter(
            &f.isa,
            &f.core,
            &FilterConfig::default(),
            &out.best.body
        ));
    }
}
