//! dI/dt stressmark construction (paper Fig. 6).
//!
//! A stressmark alternates a maximum-power and a minimum-power
//! instruction sequence inside a loop, sized from their IPCs so the
//! activity square wave hits a target stimulus frequency; an optional
//! TOD-synchronization prologue aligns the ΔI events of all cores to
//! 62.5 ns granularity (§IV-C).

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use voltnoise_uarch::isa::{Isa, Opcode};
use voltnoise_uarch::kernel::Kernel;
use voltnoise_uarch::pipeline::CoreConfig;

/// Granularity of the TOD-based alignment control: 62.5 ns on the
/// modeled machine (§IV-C).
pub const TOD_TICK_SECONDS: f64 = 62.5e-9;

/// Default synchronization interval: the paper re-syncs every 4 ms.
pub const SYNC_INTERVAL_SECONDS: f64 = 4e-3;

/// Synchronization options of a stressmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyncSpec {
    /// Synchronization interval in seconds.
    pub interval_s: f64,
    /// Exit offset after each boundary, in TOD ticks of 62.5 ns — the
    /// paper's deliberate-misalignment knob (§V-C).
    pub offset_ticks: u32,
    /// Consecutive ΔI events per burst before re-synchronizing.
    pub events: u32,
}

impl SyncSpec {
    /// The paper's default: sync every 4 ms, zero offset, 1000 events.
    pub fn paper_default() -> Self {
        SyncSpec {
            interval_s: SYNC_INTERVAL_SECONDS,
            offset_ticks: 0,
            events: 1000,
        }
    }

    /// Offset in seconds.
    pub fn offset_seconds(&self) -> f64 {
        self.offset_ticks as f64 * TOD_TICK_SECONDS
    }
}

/// Declarative description of a dI/dt stressmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StressmarkSpec {
    /// Display name.
    pub name: String,
    /// High-power sequence (one loop iteration).
    pub high_body: Vec<Opcode>,
    /// Low-power sequence (one loop iteration).
    pub low_body: Vec<Opcode>,
    /// Target stimulus frequency: ΔI event pairs per second.
    pub stim_freq_hz: f64,
    /// Fraction of each period spent in the high-power phase.
    pub duty: f64,
    /// Synchronization options; `None` free-runs (Fig. 7a style).
    pub sync: Option<SyncSpec>,
}

/// Errors from stressmark compilation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StressmarkError {
    /// A sequence body was empty.
    EmptyBody {
        /// Which body ("high" or "low").
        which: &'static str,
    },
    /// The duty cycle was outside `(0, 1)`.
    BadDuty {
        /// The offending value.
        duty: f64,
    },
    /// The stimulus frequency is not positive/finite, or so high that not
    /// even one sequence repetition fits in a phase.
    BadStimulus {
        /// Requested frequency.
        freq_hz: f64,
        /// Highest frequency this pair of sequences supports.
        max_hz: f64,
    },
}

impl fmt::Display for StressmarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StressmarkError::EmptyBody { which } => write!(f, "empty {which}-power sequence"),
            StressmarkError::BadDuty { duty } => write!(f, "duty cycle {duty} outside (0, 1)"),
            StressmarkError::BadStimulus { freq_hz, max_hz } => write!(
                f,
                "stimulus frequency {freq_hz} Hz unrealizable (max ~{max_hz:.3e} Hz)"
            ),
        }
    }
}

impl Error for StressmarkError {}

/// A compiled stressmark: sequence repetition counts plus the measured
/// electrical operating points of its phases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledStressmark {
    /// The input specification.
    pub spec: StressmarkSpec,
    /// High-power sequence repetitions per high phase.
    pub high_reps: u64,
    /// Low-power sequence repetitions per low phase.
    pub low_reps: u64,
    /// Supply current during the high phase, amperes.
    pub i_high_a: f64,
    /// Supply current during the low phase, amperes.
    pub i_low_a: f64,
    /// Supply current while spinning in the synchronization loop.
    pub i_idle_a: f64,
    /// Measured IPC of the high-power sequence.
    pub ipc_high: f64,
    /// Measured IPC of the low-power sequence.
    pub ipc_low: f64,
}

impl CompiledStressmark {
    /// The ΔI of one event on one core, in amperes.
    pub fn delta_i(&self) -> f64 {
        self.i_high_a - self.i_low_a
    }

    /// Renders the stressmark as pseudo-assembly, mirroring the paper's
    /// Fig. 6 skeleton (synchronization prologue, high sequence, low
    /// sequence, loop branch).
    pub fn render_asm(&self, isa: &Isa) -> String {
        let mut out = String::new();
        out.push_str(&format!("; dI/dt stressmark: {}\n", self.spec.name));
        out.push_str(&format!(
            "; stimulus {:.3e} Hz, duty {:.2}, dI {:.2} A\n",
            self.spec.stim_freq_hz,
            self.spec.duty,
            self.delta_i()
        ));
        if let Some(sync) = &self.spec.sync {
            out.push_str("sync_loop:\n");
            out.push_str("    STCKF   TODBUF            ; read time-of-day\n");
            out.push_str(&format!(
                "    TMLL    TODBUF,{:#06x}     ; low-order bits vs offset {} ticks\n",
                0xffff, sync.offset_ticks
            ));
            out.push_str("    BRC     7,sync_loop       ; spin until boundary\n");
            out.push_str(&format!(
                "    LGHI    R11,{}            ; events per burst\n",
                sync.events
            ));
        }
        out.push_str("didt_loop:\n");
        out.push_str(&format!(
            "    ; -- high power phase: {} reps --\n",
            self.high_reps
        ));
        for &op in &self.spec.high_body {
            out.push_str(&format!("    {}\n", isa.def(op).mnemonic));
        }
        out.push_str(&format!(
            "    ; -- low power phase: {} reps --\n",
            self.low_reps
        ));
        for &op in &self.spec.low_body {
            out.push_str(&format!("    {}\n", isa.def(op).mnemonic));
        }
        if self.spec.sync.is_some() {
            out.push_str("    BRCTG   R11,didt_loop     ; next event of burst\n");
            out.push_str("    J       sync_loop         ; re-synchronize\n");
        } else {
            out.push_str("    J       didt_loop         ; free-run\n");
        }
        out
    }
}

/// Instruction body of the synchronization spin loop; its power defines
/// the idle current between bursts.
fn spin_body(isa: &Isa) -> Vec<Opcode> {
    ["LGR", "LGR", "BC"]
        .iter()
        .filter_map(|m| isa.opcode(m))
        .collect()
}

/// Compiles a stressmark: derives sequence repetition counts from the
/// measured IPCs ("one can derive the length of high and low power
/// sequences to generate low/high activity at the given stimulus
/// frequency", §IV-C) and records phase currents.
///
/// # Errors
///
/// Returns [`StressmarkError`] for empty bodies, an out-of-range duty
/// cycle, or an unrealizable stimulus frequency.
pub fn compile(
    isa: &Isa,
    core: &CoreConfig,
    spec: StressmarkSpec,
) -> Result<CompiledStressmark, StressmarkError> {
    if spec.high_body.is_empty() {
        return Err(StressmarkError::EmptyBody { which: "high" });
    }
    if spec.low_body.is_empty() {
        return Err(StressmarkError::EmptyBody { which: "low" });
    }
    if !(spec.duty > 0.0 && spec.duty < 1.0) {
        return Err(StressmarkError::BadDuty { duty: spec.duty });
    }

    let high = Kernel::from_sequence("high", spec.high_body.clone(), 200).run(isa, core);
    let low = Kernel::from_sequence("low", spec.low_body.clone(), 40).run(isa, core);
    let idle = Kernel::from_sequence("spin", spin_body(isa), 200).run(isa, core);

    // Cycles available per phase at the target stimulus frequency.
    let t_high = spec.duty / spec.stim_freq_hz;
    let t_low = (1.0 - spec.duty) / spec.stim_freq_hz;
    if !spec.stim_freq_hz.is_finite() || spec.stim_freq_hz <= 0.0 {
        return Err(StressmarkError::BadStimulus {
            freq_hz: spec.stim_freq_hz,
            max_hz: 0.0,
        });
    }
    let cycles_high = t_high * core.freq_hz;
    let cycles_low = t_low * core.freq_hz;
    let cycles_per_high_rep = spec.high_body.len() as f64 / high.ipc.max(1e-9);
    let cycles_per_low_rep = spec.low_body.len() as f64 / low.ipc.max(1e-9);
    let high_reps = (cycles_high / cycles_per_high_rep).round() as u64;
    let low_reps = (cycles_low / cycles_per_low_rep).round() as u64;
    if high_reps < 1 || low_reps < 1 {
        let max_hz = core.freq_hz
            / (cycles_per_high_rep / spec.duty).max(cycles_per_low_rep / (1.0 - spec.duty));
        return Err(StressmarkError::BadStimulus {
            freq_hz: spec.stim_freq_hz,
            max_hz,
        });
    }

    Ok(CompiledStressmark {
        spec,
        high_reps,
        low_reps,
        i_high_a: high.avg_current_a,
        i_low_a: low.avg_current_a,
        i_idle_a: idle.avg_current_a,
        ipc_high: high.ipc,
        ipc_low: low.ipc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;
    use voltnoise_uarch::epi::EpiProfile;

    struct Fx {
        isa: Isa,
        core: CoreConfig,
        high: Vec<Opcode>,
        low: Vec<Opcode>,
    }

    fn fx() -> &'static Fx {
        static CELL: OnceLock<Fx> = OnceLock::new();
        CELL.get_or_init(|| {
            let isa = Isa::zlike();
            let core = CoreConfig::default();
            let profile = EpiProfile::generate(&isa, &core);
            let high = vec![
                isa.opcode("CHHSI").unwrap(),
                isa.opcode("L").unwrap(),
                isa.opcode("CIB").unwrap(),
                isa.opcode("CHHSI").unwrap(),
                isa.opcode("MADBR").unwrap(),
                isa.opcode("CIB").unwrap(),
            ];
            let low = vec![profile.min_power_opcode()];
            Fx {
                isa,
                core,
                high,
                low,
            }
        })
    }

    fn spec(freq: f64, sync: Option<SyncSpec>) -> StressmarkSpec {
        let f = fx();
        StressmarkSpec {
            name: "test".into(),
            high_body: f.high.clone(),
            low_body: f.low.clone(),
            stim_freq_hz: freq,
            duty: 0.5,
            sync,
        }
    }

    #[test]
    fn compile_produces_positive_delta_i() {
        let f = fx();
        let sm = compile(&f.isa, &f.core, spec(2e6, None)).unwrap();
        assert!(sm.delta_i() > 3.0, "delta_i = {}", sm.delta_i());
        assert!(sm.i_idle_a < sm.i_high_a);
    }

    #[test]
    fn reps_scale_inversely_with_frequency() {
        let f = fx();
        let slow = compile(&f.isa, &f.core, spec(1e5, None)).unwrap();
        let fast = compile(&f.isa, &f.core, spec(2e6, None)).unwrap();
        assert!(slow.high_reps > 10 * fast.high_reps);
        // Phase duration check: reps * cycles_per_rep ~= duty/f * freq.
        let cycles = slow.high_reps as f64 * slow.spec.high_body.len() as f64 / slow.ipc_high;
        let expected = 0.5 / 1e5 * f.core.freq_hz;
        assert!((cycles - expected).abs() / expected < 0.05);
    }

    #[test]
    fn unrealizable_frequency_is_rejected_with_bound() {
        let f = fx();
        let err = compile(&f.isa, &f.core, spec(2e9, None)).unwrap_err();
        match err {
            StressmarkError::BadStimulus { max_hz, .. } => {
                assert!(max_hz > 1e7 && max_hz < 2e9, "max_hz = {max_hz}")
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn invalid_duty_and_empty_bodies_rejected() {
        let f = fx();
        let mut s = spec(2e6, None);
        s.duty = 1.0;
        assert!(matches!(
            compile(&f.isa, &f.core, s),
            Err(StressmarkError::BadDuty { .. })
        ));
        let mut s = spec(2e6, None);
        s.high_body.clear();
        assert!(matches!(
            compile(&f.isa, &f.core, s),
            Err(StressmarkError::EmptyBody { which: "high" })
        ));
    }

    #[test]
    fn sync_offsets_convert_to_seconds() {
        let s = SyncSpec {
            interval_s: SYNC_INTERVAL_SECONDS,
            offset_ticks: 2,
            events: 1000,
        };
        assert!((s.offset_seconds() - 125e-9).abs() < 1e-15);
    }

    #[test]
    fn asm_rendering_includes_sync_prologue_only_when_synced() {
        let f = fx();
        let plain = compile(&f.isa, &f.core, spec(2e6, None)).unwrap();
        let synced = compile(&f.isa, &f.core, spec(2e6, Some(SyncSpec::paper_default()))).unwrap();
        assert!(!plain.render_asm(&f.isa).contains("sync_loop"));
        let asm = synced.render_asm(&f.isa);
        assert!(asm.contains("sync_loop"));
        assert!(asm.contains("CHHSI"));
        assert!(asm.contains("BRCTG"));
    }
}
