#![warn(missing_docs)]

//! # voltnoise-analysis
//!
//! Experiment drivers reproducing **every table and figure** of the
//! evaluation in *"Voltage Noise in Multi-core Processors"* (Bertran et
//! al., MICRO 2014), built on the `voltnoise-system` engine.
//!
//! | Paper artifact | Module |
//! |---|---|
//! | Table I (EPI ranking ends) | [`table1`] |
//! | Fig. 5 funnel (§IV-B) | [`funnel`] |
//! | Fig. 7a (noise vs stimulus frequency) | [`freq_sweep`] |
//! | Fig. 7b (impedance profile) | [`impedance`] |
//! | Fig. 8 (oscilloscope shots) | [`scope_shot`] |
//! | Fig. 9 (synchronized sweep) | [`freq_sweep`] |
//! | Fig. 10 (misalignment) | [`misalignment`] |
//! | Fig. 11a/b (ΔI sensitivity) | [`delta_i`] |
//! | Fig. 12 (Vmin margins) | [`margin`] |
//! | Fig. 13a (correlation), 13b (step), Fig. 14 | [`propagation`] |
//! | Fig. 15 (mapping opportunity) | [`mapping_gain`] |
//! | §VII-B (dynamic guard-banding) | [`guardband_study`] |
//! | §VII at rack scale (placement study) | [`rack_map`] |
//! | DESIGN.md ablations | [`ablation`] |
//! | Solve-backend ROM study | [`rom_error`] |
//! | Resonance-band entropy study | [`resonance_entropy`] |
//! | Spectral summaries (peaks/Q/band energy) | [`signal_summary`] |
//!
//! Every driver has a `paper()` configuration matching the paper's scale
//! and a `reduced()` configuration for quick runs, and returns a
//! serializable result with a `render()` method producing the same
//! rows/series the paper reports.

pub mod ablation;
pub(crate) mod catalog;
pub mod delta_i;
pub mod experiment;
pub mod freq_sweep;
pub mod funnel;
pub mod guardband_study;
pub mod impedance;
pub mod mapping_gain;
pub mod margin;
pub mod misalignment;
pub mod propagation;
pub mod rack_map;
pub mod render;
pub mod report;
pub mod resonance_entropy;
pub mod rom_error;
pub mod scope_shot;
pub mod signal_summary;
pub mod stats;
pub mod table1;

pub use delta_i::{run_delta_i, DeltaIConfig, DeltaIDataset, DeltaIExperiment, DeltaIView};
pub use experiment::{
    find, registry, run_to_output, run_to_output_settled, Experiment, ExperimentFailure,
    ExperimentOutput, RegistryEntry,
};
pub use freq_sweep::{run_sweep, SweepConfig, SweepExperiment, SweepResult};
pub use funnel::{FunnelExperiment, FunnelSummary};
pub use guardband_study::{
    run_guardband_study, GuardbandConfig, GuardbandExperiment, GuardbandStudy,
};
pub use impedance::{run_impedance, ImpedanceConfig, ImpedanceExperiment, ImpedanceProfile};
pub use mapping_gain::{
    run_mapping_gain, MappingGainConfig, MappingGainExperiment, MappingGainResult,
};
pub use margin::{run_margin, MarginConfig, MarginExperiment, MarginResult};
pub use misalignment::{run_misalignment, MisalignConfig, MisalignExperiment, MisalignResult};
pub use propagation::{
    run_drawer_propagation, run_mapping_comparison, run_step_response, CorrelationAnalysis,
    DrawerPropagation, DrawerPropagationExperiment, MappingComparison, MappingComparisonExperiment,
    StepResponse, StepResponseExperiment,
};
pub use rack_map::{run_rack_map, RackMapConfig, RackMapExperiment, RackMapResult};
pub use report::{
    full_report, full_report_on, full_report_with_telemetry, telemetry_section, ReportScale,
};
pub use resonance_entropy::{
    run_resonance_entropy, ResonanceEntropy, ResonanceEntropyConfig, ResonanceEntropyExperiment,
    ResonancePoint,
};
pub use rom_error::{
    run_rom_error_study, RomErrorConfig, RomErrorExperiment, RomErrorRow, RomErrorStudy,
};
pub use scope_shot::{run_scope_shot, ScopeConfig, ScopeShot, ScopeShotExperiment};
pub use signal_summary::SignalSummary;
pub use stats::CorrelationMatrix;
pub use table1::{Table1, Table1Experiment};
