//! Regenerates paper Fig. 9: per-core noise vs stimulus frequency with
//! TOD synchronization every 4 ms.
//!
//! A thin wrapper over the experiment registry: the configuration,
//! engine routing and JSON export all live in `voltnoise_bench`.

fn main() {
    voltnoise_bench::run_registry_bin("fig9");
}
