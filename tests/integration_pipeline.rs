//! End-to-end integration: the full paper pipeline from ISA definition to
//! skitter readings, crossing every crate boundary.

use voltnoise::prelude::*;

#[test]
fn full_pipeline_isa_to_noise() {
    // ISA -> EPI -> search -> stressmark -> chip -> noise -> skitter.
    let tb = Testbed::fast();

    // The EPI profile covers the full ISA and reproduces Table I's ends.
    assert_eq!(tb.profile().len(), 1301);
    assert_eq!(tb.profile().top(1)[0].mnemonic, "CIB");
    assert_eq!(tb.profile().bottom(1)[0].mnemonic, "SRNM");

    // The search funnel has the paper's shape.
    let s = tb.search();
    assert_eq!(s.total_combinations, 531_441);
    assert!(s.after_microarch > 1_000);
    assert!(s.after_ipc <= 1_000);
    assert!(s.best.ipc > 2.5);

    // The stressmark alternates the searched sequences.
    let sm = tb.max_stressmark(2.5e6, Some(SyncSpec::paper_default()));
    assert_eq!(sm.spec.high_body, s.best.body);
    assert!(sm.delta_i() > 5.0);

    // Running it produces physically sensible noise.
    let loads: [CoreLoad; NUM_CORES] = std::array::from_fn(|_| CoreLoad::Stressmark(sm.clone()));
    let out = run_noise(
        tb.chip(),
        &loads,
        &NoiseRunConfig {
            window_s: Some(50e-6),
            ..NoiseRunConfig::default()
        },
    )
    .unwrap();
    for i in 0..NUM_CORES {
        assert!(out.v_min[i] < tb.chip().v_nom());
        assert!(out.v_min[i] > 0.8 * tb.chip().v_nom(), "unphysical droop");
        assert!(out.pct_p2p[i] > 20.0 && out.pct_p2p[i] < 95.0);
    }
    // The chip power meter reads more than idle, less than 6x max power.
    let p = out.chip_power.watts();
    assert!(p > 6.0 * 8.0 && p < 6.0 * 25.0, "chip power {p}");
}

#[test]
fn stressmark_asm_listing_round_trips_mnemonics() {
    let tb = Testbed::fast();
    let sm = tb.max_stressmark(2e6, Some(SyncSpec::paper_default()));
    let asm = sm.render_asm(tb.isa());
    for m in &tb.max_sequence().mnemonics {
        assert!(asm.contains(m), "listing missing {m}");
    }
    assert!(asm.contains("sync_loop"));
}

#[test]
fn undervolting_deepens_effective_droop_readings() {
    let tb = Testbed::fast();
    let sm = tb.max_stressmark(2.5e6, Some(SyncSpec::paper_default()));
    let loads: [CoreLoad; NUM_CORES] = std::array::from_fn(|_| CoreLoad::Stressmark(sm.clone()));
    let cfg = NoiseRunConfig {
        window_s: Some(40e-6),
        ..NoiseRunConfig::default()
    };
    let nominal = run_noise(tb.chip(), &loads, &cfg).unwrap();
    let biased_chip = tb.chip().undervolted(0.95).unwrap();
    let biased = run_noise(&biased_chip, &loads, &cfg).unwrap();
    let vmin_nom = nominal.v_min.iter().cloned().fold(f64::INFINITY, f64::min);
    let vmin_low = biased.v_min.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        vmin_low < vmin_nom - 0.03,
        "5% undervolt must lower the trough: {vmin_nom} -> {vmin_low}"
    );
}

#[test]
fn different_chips_same_methodology() {
    // The paper validates sequences "on different processors": the search
    // product works on chips with different process variation.
    let tb = Testbed::fast();
    let sm = tb.max_stressmark(2.5e6, Some(SyncSpec::paper_default()));
    let loads: [CoreLoad; NUM_CORES] = std::array::from_fn(|_| CoreLoad::Stressmark(sm.clone()));
    let cfg = NoiseRunConfig {
        window_s: Some(40e-6),
        ..NoiseRunConfig::default()
    };
    let a = run_noise(tb.chip(), &loads, &cfg).unwrap().max_pct_p2p();
    let other = Chip::with_seed(42).unwrap();
    let b = run_noise(&other, &loads, &cfg).unwrap().max_pct_p2p();
    assert!(
        (a - b).abs() < 15.0,
        "chips should agree broadly: {a} vs {b}"
    );
    assert!(b > 30.0, "stressmark must stress any chip: {b}");
}

#[test]
fn vmin_experiment_detects_failure_for_worst_stressmark() {
    let tb = Testbed::fast();
    let sm = tb.max_stressmark(2.5e6, Some(SyncSpec::paper_default()));
    let loads: [CoreLoad; NUM_CORES] = std::array::from_fn(|_| CoreLoad::Stressmark(sm.clone()));
    let path = tb.chip().config().critical_path;
    let cfg = NoiseRunConfig {
        window_s: Some(30e-6),
        ..NoiseRunConfig::default()
    };
    let result = voltnoise::measure::run_vmin(&VminConfig::default(), |bias| {
        let chip = tb.chip().undervolted(bias).unwrap();
        let out = run_noise(&chip, &loads, &cfg).unwrap();
        let v_min = out.v_min.iter().cloned().fold(f64::INFINITY, f64::min);
        path.fails_at(v_min)
    });
    let bias = result
        .failing_bias
        .expect("worst stressmark must eventually fail");
    assert!(bias < 1.0 && bias > 0.85, "failing bias {bias}");
    // The paper's system survives at nominal voltage.
    assert!(bias <= 1.0 - 0.005, "must not fail at nominal");
}

#[test]
fn square_wave_abstraction_matches_cycle_trace() {
    // The noise engine abstracts a stressmark as a trapezoidal square
    // wave; this test replays the *actual* per-cycle current trace of the
    // searched sequences through the PDN and checks the droop envelope
    // agrees with the abstraction.
    use voltnoise::pdn::transient::{Probe, TransientConfig, TransientSolver};
    use voltnoise::pdn::waveform::{
        CoreWaveform, MultiCoreDrive, StressWaveform, TracePlayback, WaveMode,
    };

    let tb = Testbed::fast();
    let sm = tb.max_stressmark(2.5e6, None);
    let core_cfg = tb.core();
    let cycle_s = core_cfg.cycle_time();
    let phase_cycles = (0.5 / 2.5e6 / cycle_s) as usize; // 200 ns per phase

    // Cycle-resolution current of the high phase.
    let reps = (sm.high_reps as usize).max(1);
    let (_, mut high_trace) =
        voltnoise::uarch::Kernel::from_sequence("high", sm.spec.high_body.clone(), reps)
            .run_traced(tb.isa(), core_cfg);
    high_trace.resize(phase_cycles, *high_trace.last().unwrap());

    // Cycle-resolution current of the low (serializing) phase.
    let (_, mut low_trace) = voltnoise::uarch::Kernel::from_sequence(
        "low",
        sm.spec.low_body.clone(),
        (sm.low_reps as usize).max(1),
    )
    .run_traced(tb.isa(), core_cfg);
    low_trace.resize(phase_cycles, *low_trace.last().unwrap());

    let mut period_trace = high_trace;
    period_trace.extend(low_trace);

    let chip = tb.chip();
    let idle = core_cfg.static_power_w / core_cfg.v_nom;
    let probe = [Probe::NodeVoltage(chip.pdn().core_node(0))];
    let mut cfg = TransientConfig::new(40e-6);
    cfg.h_coarse = 4e-9;
    cfg.h_fine = 0.5e-9;

    // (a) replay the real cycle trace on core 0, others idle;
    let mut traces = vec![vec![idle]; 6];
    traces[0] = period_trace;
    let playback = TracePlayback::new(traces, cycle_s, 2.0);
    let mut solver = TransientSolver::new(chip.pdn().netlist()).unwrap();
    let real = solver.run(&playback, &probe, &cfg).unwrap();

    // (b) the square-wave abstraction of the same stressmark.
    let wave = StressWaveform {
        i_low: sm.i_low_a,
        i_high: sm.i_high_a,
        i_idle: sm.i_idle_a,
        stim_period: 400e-9,
        duty: 0.5,
        rise_time: 2e-9,
        mode: WaveMode::FreeRun {
            phase: 0.0,
            period_skew_ppm: 0.0,
        },
    };
    let mut waves = vec![CoreWaveform::Constant(idle); 6];
    waves[0] = CoreWaveform::Stress(wave);
    let mut solver2 = TransientSolver::new(chip.pdn().netlist()).unwrap();
    let abstracted = solver2
        .run(&MultiCoreDrive::new(waves), &probe, &cfg)
        .unwrap();

    let p_real = real.stats[0].peak_to_peak();
    let p_abs = abstracted.stats[0].peak_to_peak();
    assert!(p_real > 0.0 && p_abs > 0.0);
    let ratio = p_real / p_abs;
    assert!(
        (0.6..1.7).contains(&ratio),
        "cycle-trace p2p {p_real:.5} V vs square-wave p2p {p_abs:.5} V (ratio {ratio:.2})"
    );
}
