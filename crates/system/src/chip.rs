//! The modeled six-core chip: PDN, skitters, critical paths and process
//! variation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use voltnoise_measure::skitter::{Skitter, SkitterConfig};
use voltnoise_measure::vmin::CriticalPath;
use voltnoise_pdn::topology::{ChipPdn, PdnParams, NUM_CORES};
use voltnoise_pdn::PdnError;
use voltnoise_uarch::pipeline::CoreConfig;

/// Parameters of the cycle-microstructure (high-frequency) noise
/// component.
///
/// The mid-frequency noise is simulated by the PDN transient solver; on
/// top of it rides sub-nanosecond supply ripple from the per-cycle
/// current microstructure of the running code. When the ΔI events of
/// several cores are cycle-aligned (deterministic TOD sync), their
/// microstructure superposes **coherently** through the shared die grid;
/// once misaligned by more than a cycle (62.5 ns is ~344 cycles) the
/// contributions only add in quadrature. This is the mechanism behind
/// the paper's two headline results: synchronization matters more than
/// resonance (Fig. 9/12), and 62.5 ns of misalignment collapses the sync
/// bonus (Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HfNoiseParams {
    /// Impedance a core's *own* cycle-rate ripple sees (ohms): small,
    /// because the local decap sits adjacent.
    pub z_local_ohm: f64,
    /// Impedance cycle-rate ripple sees through the *shared* die grid
    /// (ohms): dominated by L·di/dt at the core clock rate, so much
    /// larger than the mid-frequency impedances.
    pub z_shared_ohm: f64,
    /// Fraction of a workload's ΔI that appears as cycle-rate ripple.
    pub ripple_fraction: f64,
    /// Coupling weight of same-domain neighbours (own core = 1.0).
    pub same_domain_coupling: f64,
    /// Coupling weight across domains (damped by the L3 decap).
    pub cross_domain_coupling: f64,
    /// Fraction of the ripple that appears as droop (the rest as
    /// overshoot); droops dominate because the grid is charged from above.
    pub droop_asymmetry: f64,
}

impl Default for HfNoiseParams {
    fn default() -> Self {
        HfNoiseParams {
            z_local_ohm: 0.35e-3,
            z_shared_ohm: 8.2e-3,
            ripple_fraction: 0.45,
            same_domain_coupling: 0.52,
            cross_domain_coupling: 0.44,
            droop_asymmetry: 0.65,
        }
    }
}

/// Chip-level configuration: everything needed to instantiate a chip
/// instance with its process variation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipConfig {
    /// Manufacturing-variation seed. Seed 0 selects the curated "paper
    /// chip" whose noisiest cores are 2 and 4, as measured in Fig. 7a.
    pub seed: u64,
    /// Electrical parameters of the PDN before per-core variation.
    pub pdn: PdnParams,
    /// Core pipeline/power model configuration.
    pub core: CoreConfig,
    /// Skitter macro configuration before per-core variation.
    pub skitter: SkitterConfig,
    /// Critical-path timing model (shared by all cores).
    pub critical_path: CriticalPath,
    /// High-frequency microstructure noise parameters.
    pub hf: HfNoiseParams,
}

// Spelled out (rather than derived) to document that seed 0 is the
// curated paper chip.
#[allow(clippy::derivable_impls)]
impl Default for ChipConfig {
    fn default() -> Self {
        ChipConfig {
            seed: 0,
            pdn: PdnParams::default(),
            core: CoreConfig::default(),
            skitter: SkitterConfig::default(),
            critical_path: CriticalPath::default(),
            hf: HfNoiseParams::default(),
        }
    }
}

/// Curated per-core skitter sensitivity of the seed-0 "paper chip":
/// cores 2 and 4 read noisiest, as in Fig. 7a.
const PAPER_SKITTER_VARIATION: [f64; NUM_CORES] = [1.00, 0.96, 1.10, 1.01, 1.07, 0.98];

/// Curated per-core grid-resistance variation of the seed-0 chip.
const PAPER_GRID_VARIATION: [f64; NUM_CORES] = [1.00, 0.95, 1.18, 1.00, 1.12, 0.97];

/// A chip instance: built PDN plus per-core instrumentation.
#[derive(Debug, Clone)]
pub struct Chip {
    config: ChipConfig,
    pdn: ChipPdn,
    skitters: [Skitter; NUM_CORES],
}

impl Chip {
    /// Builds a chip from its configuration, applying seeded process
    /// variation to the PDN grid and the skitter sensitivities.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] if the PDN parameters are invalid.
    pub fn new(config: &ChipConfig) -> Result<Self, PdnError> {
        let (grid_var, skitter_var) = if config.seed == 0 {
            (PAPER_GRID_VARIATION, PAPER_SKITTER_VARIATION)
        } else {
            let mut rng = SmallRng::seed_from_u64(config.seed);
            let mut g = [1.0; NUM_CORES];
            let mut s = [1.0; NUM_CORES];
            for i in 0..NUM_CORES {
                g[i] = 1.0 + rng.gen_range(-0.08..0.20);
                s[i] = 1.0 + rng.gen_range(-0.06..0.12);
            }
            (g, s)
        };
        let mut pdn_params = config.pdn.clone();
        pdn_params.grid_variation = grid_var;
        let pdn = ChipPdn::build(&pdn_params)?;
        let skitters = std::array::from_fn(|i| {
            let mut sc = config.skitter;
            sc.sensitivity_variation = skitter_var[i];
            sc.v_nom = config.pdn.v_nom;
            Skitter::new(sc)
        });
        Ok(Chip {
            config: config.clone(),
            pdn,
            skitters,
        })
    }

    /// The seed-0 chip that reproduces the paper's per-core ordering.
    ///
    /// # Panics
    ///
    /// Never panics: the default parameters are valid by construction.
    // The one sanctioned expect in this crate: the default-config build
    // is validated by the test suite, and an infallible constructor is
    // the documented contract of this method.
    #[allow(clippy::expect_used)]
    pub fn paper_default() -> Self {
        Chip::new(&ChipConfig::default()).expect("default chip parameters are valid")
    }

    /// A chip with random process variation (different physical
    /// processor, as in the paper's cross-processor validation).
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] if the base PDN parameters are invalid.
    pub fn with_seed(seed: u64) -> Result<Self, PdnError> {
        let config = ChipConfig {
            seed,
            ..ChipConfig::default()
        };
        Chip::new(&config)
    }

    /// The configuration this chip was built from.
    pub fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// The built PDN.
    pub fn pdn(&self) -> &ChipPdn {
        &self.pdn
    }

    /// The skitter macro of core `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= NUM_CORES`.
    pub fn skitter(&self, i: usize) -> &Skitter {
        &self.skitters[i]
    }

    /// Nominal supply voltage.
    pub fn v_nom(&self) -> f64 {
        self.config.pdn.v_nom
    }

    /// Rebuilds the PDN with every voltage source scaled by `bias`
    /// (undervolting for Vmin experiments).
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] if the scaled parameters are invalid.
    pub fn undervolted(&self, bias: f64) -> Result<Chip, PdnError> {
        let mut cfg = self.config.clone();
        cfg.pdn.v_nom *= bias;
        // Keep the skitter and timing references anchored at the original
        // nominal voltage: droop below the *biased* rail must read as a
        // deeper excursion from the original operating point.
        let mut chip = Chip::new(&cfg)?;
        for (sk, orig) in chip.skitters.iter_mut().zip(&self.skitters) {
            let mut sc = *sk.config();
            sc.v_nom = orig.config().v_nom;
            *sk = Skitter::new(sc);
        }
        chip.config.critical_path = self.config.critical_path;
        Ok(chip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_marks_cores_2_and_4_noisy() {
        let chip = Chip::paper_default();
        let s: Vec<f64> = (0..NUM_CORES)
            .map(|i| chip.skitter(i).config().sensitivity_variation)
            .collect();
        assert!(s[2] > s[0] && s[2] > s[1]);
        assert!(s[4] > s[0] && s[4] > s[5]);
    }

    #[test]
    fn seeded_chips_differ_but_are_reproducible() {
        let a = Chip::with_seed(7).unwrap();
        let b = Chip::with_seed(7).unwrap();
        let c = Chip::with_seed(8).unwrap();
        let var = |ch: &Chip| -> Vec<f64> {
            (0..NUM_CORES)
                .map(|i| ch.skitter(i).config().sensitivity_variation)
                .collect()
        };
        assert_eq!(var(&a), var(&b));
        assert_ne!(var(&a), var(&c));
    }

    #[test]
    fn undervolted_chip_scales_rail_but_keeps_skitter_reference() {
        let chip = Chip::paper_default();
        let uv = chip.undervolted(0.95).unwrap();
        assert!((uv.config().pdn.v_nom - 1.05 * 0.95).abs() < 1e-12);
        assert_eq!(uv.skitter(0).config().v_nom, chip.skitter(0).config().v_nom);
    }

    #[test]
    fn hf_defaults_are_physical() {
        let hf = HfNoiseParams::default();
        assert!(hf.z_local_ohm > 0.0 && hf.z_local_ohm < hf.z_shared_ohm);
        assert!(hf.z_shared_ohm < 0.05);
        assert!(hf.ripple_fraction > 0.0 && hf.ripple_fraction < 1.0);
        assert!(hf.same_domain_coupling > hf.cross_domain_coupling);
        assert!((0.5..1.0).contains(&hf.droop_asymmetry));
    }
}
